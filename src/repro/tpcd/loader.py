"""TPC-D bulk load pipeline with phase timings (paper section 6).

Reproduces the three load phases the paper reports:

1. bulk load of the generated database into BATs ("using its bulk load
   utility, which took 1:28 hour" — properties key/ordered/synced are
   set by the loader),
2. extent + datavector creation ("took about half an hour"),
3. reordering all attribute BATs on tail values ("an additional hour").

Returns a :class:`LoadReport` with per-phase wall-clock seconds and
the resulting catalog sizes (the paper's "1.6 GB of disk space, of
which 300 MB in data vectors, 1.3 GB as base data" row).

With ``db_dir`` the loaded database is persisted through the storage
layer (:mod:`repro.monet.storage`) and **warm starts** skip the whole
pipeline: :func:`open_tpcd` reopens the saved heaps as ``np.memmap``
views, which is how Monet itself starts up — "the BATs are mapped into
virtual memory" — and what lets benchmarks skip dbgen entirely.
"""

import time

from ..errors import CatalogError
from ..moa.mapping import FlattenedDatabase, create_datavectors, \
    reorder_on_tail
from ..moa.session import MOADatabase
from ..monet.kernel import MonetKernel
from ..monet.storage import (as_backend, generation_prefix,
                             next_generation)
from .schema import tpcd_schema


class LoadReport:
    """Phase timings + catalog sizes of one load (or reopen) run."""

    def __init__(self, load_s, datavector_s, reorder_s, base_bytes,
                 vector_bytes, warm=False):
        self.load_s = load_s
        self.datavector_s = datavector_s
        self.reorder_s = reorder_s
        self.base_bytes = base_bytes
        self.vector_bytes = vector_bytes
        #: True when the database was reopened from a db_dir cache
        #: instead of being rebuilt (load_s is then the mmap-open time)
        self.warm = warm

    @property
    def total_s(self):
        return self.load_s + self.datavector_s + self.reorder_s

    @property
    def total_bytes(self):
        return self.base_bytes + self.vector_bytes

    def format_table(self):
        first = ("reopen saved heaps (mmap)" if self.warm
                 else "ascii import / bulk load")
        rows = [
            (first, self.load_s),
            ("extent + datavector creation", self.datavector_s),
            ("reorder all tables on tail", self.reorder_s),
            ("total", self.total_s),
        ]
        lines = ["%-32s %10s" % ("load phase", "seconds")]
        for label, seconds in rows:
            lines.append("%-32s %10.2f" % (label, seconds))
        lines.append("%-32s %10.1f MB (base %0.1f + vectors %0.1f)"
                     % ("database size", self.total_bytes / 1e6,
                        self.base_bytes / 1e6, self.vector_bytes / 1e6))
        return "\n".join(lines)


def load_tpcd(dataset, kernel=None, db_dir=None):
    """Load a generated dataset; returns (MOADatabase, LoadReport).

    When ``db_dir`` is given and holds a database saved from the same
    ``(scale, seed)``, the pipeline is skipped and the saved heaps are
    reopened via mmap (``report.warm``); otherwise the dataset is
    loaded in full and then persisted to ``db_dir`` for the next run.
    """
    if db_dir is not None:
        meta = peek_tpcd_meta(db_dir)
        if meta is not None and meta.get("scale") == dataset.scale \
                and meta.get("seed") == dataset.seed:
            db, report = open_tpcd(db_dir)
            # re-attach the logical store so the reference-evaluator
            # path (db.evaluate / check_commutes) keeps working
            db.flat.data = dataset.data
            return db, report

    db = MOADatabase(tpcd_schema(), kernel=kernel)

    started = time.perf_counter()
    db.load(dataset.data)
    load_s = time.perf_counter() - started
    base_bytes = db.kernel.total_bytes()

    started = time.perf_counter()
    create_datavectors(db.flat)
    datavector_s = time.perf_counter() - started
    vector_bytes = _vector_bytes(db.kernel)

    started = time.perf_counter()
    reorder_on_tail(db.flat)
    reorder_s = time.perf_counter() - started

    report = LoadReport(load_s, datavector_s, reorder_s, base_bytes,
                        vector_bytes)
    if db_dir is not None:
        save_tpcd(db, db_dir, dataset)
    return db, report


def save_tpcd(db, db_dir, dataset=None, meta=None):
    """Persist a loaded TPC-D database; returns the manifest.

    When the generating ``dataset`` is at hand, its n-ary base tables
    are persisted alongside the BAT catalog (a ``rowstore`` manifest
    section; see :func:`repro.tpcd.rowstore.open_rowstore`), so the
    Figure 9 row-store comparator warm-starts from the same directory.
    The whole save — heap files, row-store columns, manifest — runs
    under the directory's exclusive catalog lock and bumps the
    shared-catalog generation once.
    """
    from .rowstore import save_rowstore_tables

    full_meta = {"kind": "tpcd"}
    if dataset is not None:
        full_meta.update({
            "scale": dataset.scale,
            "seed": dataset.seed,
            "counts": {name: int(count)
                       for name, count in dataset.counts.items()},
        })
    full_meta.update(meta or {})
    backend = as_backend(db_dir)
    with backend.lock().exclusive():
        extra = None
        if dataset is not None:
            # name the row-store columns under the generation the
            # kernel save (below, same exclusive lock) will assign, so
            # they are crash-isolated like every other heap file
            prefix = generation_prefix(next_generation(backend))
            extra = {"rowstore": save_rowstore_tables(
                backend, dataset.tables, prefix=prefix)}
        else:
            # a dataset-less re-save must not destroy an already
            # persisted baseline: carry the section forward so its
            # files stay in the prune keep-set
            try:
                section = backend.read_manifest().get("rowstore")
            except CatalogError:
                section = None
            if section is not None:
                extra = {"rowstore": section}
        return db.kernel.save(backend, meta=full_meta, extra=extra)


def open_tpcd(db_dir, expected_generation=None, lock_timeout=None,
              kernel=None):
    """Reopen a saved TPC-D database; returns (MOADatabase, LoadReport).

    Needs no dataset at all — this is the dbgen-skipping warm start.
    The reopened database serves base-BAT columns as ``np.memmap``
    views and answers every query through the physical (MIL) path;
    ``db.flat.data`` is ``None`` until a logical store is attached, so
    the reference-evaluator path is unavailable until then.

    ``expected_generation`` pins the open to one shared-catalog
    generation (see :mod:`repro.monet.storage`) — the multi-process
    dispatcher passes it so every worker serves the same snapshot.
    Passing an already-opened ``kernel`` wraps it instead of mapping
    the catalog a second time (the dispatcher's mixed MIL + query
    workloads use this).
    """
    started = time.perf_counter()
    if kernel is None:
        kernel = MonetKernel.open(
            db_dir, expected_generation=expected_generation,
            lock_timeout=lock_timeout)
    elif expected_generation is not None \
            and kernel.generation != expected_generation:
        # the pin binds pre-opened kernels too: a cached kernel from
        # an older (or rolled-forward) generation must not silently
        # masquerade as the pinned snapshot
        from ..errors import CatalogChangedError, StaleCatalogError
        if (kernel.generation or 0) < expected_generation:
            raise StaleCatalogError(
                "pre-opened kernel serves generation %s, caller "
                "pinned %d" % (kernel.generation, expected_generation))
        raise CatalogChangedError(
            "pre-opened kernel serves generation %s, caller pinned %d"
            % (kernel.generation, expected_generation))
    schema = tpcd_schema()
    db = MOADatabase(schema, kernel=kernel)
    db.flat = FlattenedDatabase(schema, kernel, None)
    open_s = time.perf_counter() - started
    vector_bytes = _vector_bytes(kernel)
    base_bytes = kernel.total_bytes()
    report = LoadReport(open_s, 0.0, 0.0, base_bytes, vector_bytes,
                        warm=True)
    return db, report


def peek_tpcd_meta(db_dir):
    """The saved manifest's meta dict, or None when absent/corrupt/
    not a TPC-D database (a corrupt manifest is treated as a cache
    miss here; :func:`open_tpcd` raises on it instead)."""
    try:
        manifest = as_backend(db_dir).read_manifest()
    except CatalogError:
        return None
    meta = manifest.get("meta")
    if not isinstance(meta, dict) or meta.get("kind") != "tpcd":
        return None
    return meta


def _vector_bytes(kernel):
    total = 0
    for name in kernel.names():
        bat = kernel.get(name)
        accel = bat.accel.get("datavector")
        if accel is not None:
            for heap in accel.vector.heaps:
                total += heap.nbytes
    return total
