"""The TPC-D queries Q1-Q15 in MOA (paper Figure 9).

Each query is a :class:`TPCDQuery`: its Figure 9 comment, the MOA
text(s), and a driver that executes it against a
:class:`~repro.moa.session.MOADatabase`.  Most queries are a single
MOA expression; Q11, Q14 and Q15 are *two-phase* (a scalar aggregate
feeds a literal into the main query), matching how the paper's
hand-translated scripts handled SQL's scalar subqueries.

``item_selectivity`` reproduces Figure 9's "Item select%" column: the
fraction of the Item extent satisfying the query's Item-level
predicates (``n.a.`` for the two queries that never touch Item).
"""

import numpy as np

from .dbgen import CURRENT_DATE  # noqa: F401  (re-exported for params)

_REVENUE = "*(extendedprice, -(1.0, discount))"


class TPCDQuery:
    """One TPC-D query: number, Figure 9 comment, MOA driver."""

    def __init__(self, number, comment, texts_fn, run_fn,
                 selectivity_fn=None, defaults=None):
        self.number = number
        self.comment = comment
        self._texts_fn = texts_fn
        self._run_fn = run_fn
        self._selectivity_fn = selectivity_fn
        self.defaults = defaults or {}

    def params(self, overrides=None):
        params = dict(self.defaults)
        if overrides:
            params.update(overrides)
        return params

    def texts(self, overrides=None):
        """The MOA query text(s) (placeholders resolved)."""
        return self._texts_fn(self.params(overrides))

    def run(self, db, overrides=None):
        """Execute against a loaded MOADatabase; returns result rows."""
        return self._run_fn(db, self.params(overrides))

    def item_selectivity(self, dataset, overrides=None):
        """Fraction of Item touched by the main selection, or None."""
        if self._selectivity_fn is None:
            return None
        return self._selectivity_fn(dataset, self.params(overrides))

    def __repr__(self):
        return "TPCDQuery(Q%d: %s)" % (self.number, self.comment)


def _single(text_builder):
    """texts_fn/run_fn pair for plain one-statement queries."""
    def texts(params):
        return [text_builder(params)]

    def run(db, params):
        return db.query(text_builder(params)).rows

    return texts, run


# ----------------------------------------------------------------------
# Q1 — billing aggregates over the big table
# ----------------------------------------------------------------------
def _q1_text(params):
    return """
sort[returnflag asc, linestatus asc](
 project[<returnflag : returnflag, linestatus : linestatus,
   sum(project[quantity](%%group)) : sum_qty,
   sum(project[extendedprice](%%group)) : sum_base_price,
   sum(project[%(rev)s](%%group)) : sum_disc_price,
   sum(project[*(%(rev)s, +(1.0, tax))](%%group)) : sum_charge,
   avg(project[quantity](%%group)) : avg_qty,
   avg(project[extendedprice](%%group)) : avg_price,
   avg(project[discount](%%group)) : avg_disc,
   count(%%group) : count_order>](
  nest[returnflag, linestatus](
   select[<=(shipdate, date("%(date)s"))](Item))))
""" % {"rev": _REVENUE, "date": params["date"]}


def _q1_selectivity(dataset, params):
    from ..monet.atoms import date_to_days
    ship = dataset.tables["item"]["shipdate"]
    return float(np.mean(ship <= date_to_days(params["date"])))


# ----------------------------------------------------------------------
# Q2 — cheapest supplier for parts of a size/type in a region
# ----------------------------------------------------------------------
def _q2_text(params):
    base = ('select[=(%%1.nation.region.name, "%(region)s")]'
            "(unnest[supplies](Supplier))" % params)
    qualified = ('semijoin[%%2.part, %%0](%(base)s, '
                 'select[=(size, %(size)d), endswith(type, "%(type)s")]'
                 "(Part))" % {"base": base, "size": params["size"],
                              "type": params["type"],
                              "region": params["region"]})
    mins = ("project[<part : part, min(project[%%2.cost](%%group)) : "
            "mincost>](nest[%%2.part : part](%s))" % qualified)
    joined = ("join[<%%2.part, %%2.cost>, <part, mincost>](%s, %s)"
              % (qualified, mins))
    return """
top[100](sort[s_acctbal desc, n_name asc, p_name asc](
 project[<%%1.%%1.acctbal : s_acctbal, %%1.%%1.name : s_name,
          %%1.%%1.nation.name : n_name, %%1.%%2.part.name : p_name,
          %%1.%%2.part.manufacturer : p_mfgr,
          %%1.%%1.address : s_address, %%1.%%1.phone : s_phone,
          %%1.%%2.cost : cost>](%(joined)s)))
""" % {"joined": joined}


# ----------------------------------------------------------------------
# Q3 — top 10 valuable orders for a market segment
# ----------------------------------------------------------------------
def _q3_text(params):
    return """
top[10](sort[revenue desc, odate asc](
 project[<order : order, sum(project[%(rev)s](%%group)) : revenue,
          order.orderdate : odate, order.shippriority : ship>](
  nest[order](
   semijoin[order, %%0](
    select[>(shipdate, date("%(date)s"))](Item),
    select[=(cust.mktsegment, "%(segment)s"),
           <(orderdate, date("%(date)s"))](Order))))))
""" % {"rev": _REVENUE, "date": params["date"],
       "segment": params["segment"]}


def _q3_selectivity(dataset, params):
    from ..monet.atoms import date_to_days
    ship = dataset.tables["item"]["shipdate"]
    return float(np.mean(ship > date_to_days(params["date"])))


# ----------------------------------------------------------------------
# Q4 — priority assessment: orders with late items in a quarter
# ----------------------------------------------------------------------
def _q4_text(params):
    return """
sort[orderpriority asc](
 project[<orderpriority : orderpriority, count(%%group) : order_count>](
  nest[orderpriority](
   semijoin[%%0, order](
    select[>=(orderdate, date("%(d1)s")), <(orderdate, date("%(d2)s"))](Order),
    select[<(commitdate, receiptdate)](Item)))))
""" % params


def _q4_selectivity(dataset, params):
    item = dataset.tables["item"]
    return float(np.mean(item["commitdate"] < item["receiptdate"]))


# ----------------------------------------------------------------------
# Q5 — revenue per local supplier nation in a region/year
# ----------------------------------------------------------------------
def _q5_text(params):
    return """
sort[revenue desc](
 project[<nation : nation, sum(project[%(rev)s](%%group)) : revenue>](
  nest[supplier.nation.name : nation](
   select[>=(order.orderdate, date("%(d1)s")),
          <(order.orderdate, date("%(d2)s")),
          =(supplier.nation.region.name, "%(region)s"),
          =(supplier.nation, order.cust.nation)](Item))))
""" % {"rev": _REVENUE, "d1": params["d1"], "d2": params["d2"],
       "region": params["region"]}


def _q5_selectivity(dataset, params):
    from ..monet.atoms import date_to_days
    orders = dataset.tables["orders"]["orderdate"]
    odates = orders[dataset.tables["item"]["order"]]
    lo, hi = date_to_days(params["d1"]), date_to_days(params["d2"])
    return float(np.mean((odates >= lo) & (odates < hi)))


# ----------------------------------------------------------------------
# Q6 — benefits if discounts were abolished (scalar)
# ----------------------------------------------------------------------
def _q6_text(params):
    return """
sum(project[*(extendedprice, discount)](
 select[>=(shipdate, date("%(d1)s")), <(shipdate, date("%(d2)s")),
        >=(discount, %(disc_lo)s), <=(discount, %(disc_hi)s),
        <(quantity, %(qty)d)](Item)))
""" % params


def _q6_run(db, params):
    return db.query(_q6_text(params)).rows


def _q6_selectivity(dataset, params):
    from ..monet.atoms import date_to_days
    item = dataset.tables["item"]
    lo, hi = date_to_days(params["d1"]), date_to_days(params["d2"])
    mask = ((item["shipdate"] >= lo) & (item["shipdate"] < hi)
            & (item["discount"] >= float(params["disc_lo"]) - 1e-9)
            & (item["discount"] <= float(params["disc_hi"]) + 1e-9)
            & (item["quantity"] < params["qty"]))
    return float(np.mean(mask))


# ----------------------------------------------------------------------
# Q7 — value of shipped goods between two nations
# ----------------------------------------------------------------------
def _q7_text(params):
    return """
sort[supp_nation asc, cust_nation asc, lyear asc](
 project[<supp_nation : supp_nation, cust_nation : cust_nation,
          lyear : lyear, sum(project[volume](%%group)) : revenue>](
  nest[supp_nation, cust_nation, lyear](
   project[<supplier.nation.name : supp_nation,
            order.cust.nation.name : cust_nation,
            year(shipdate) : lyear, %(rev)s : volume>](
    select[>=(shipdate, date("%(d1)s")), <=(shipdate, date("%(d2)s")),
           or(and(=(supplier.nation.name, "%(n1)s"),
                  =(order.cust.nation.name, "%(n2)s")),
              and(=(supplier.nation.name, "%(n2)s"),
                  =(order.cust.nation.name, "%(n1)s")))](Item)))))
""" % {"rev": _REVENUE, "d1": params["d1"], "d2": params["d2"],
       "n1": params["nation1"], "n2": params["nation2"]}


def _q7_selectivity(dataset, params):
    from ..monet.atoms import date_to_days
    item = dataset.tables["item"]
    lo, hi = date_to_days(params["d1"]), date_to_days(params["d2"])
    return float(np.mean((item["shipdate"] >= lo)
                         & (item["shipdate"] <= hi)))


# ----------------------------------------------------------------------
# Q8 — market share change of a nation for a part type in a region
# ----------------------------------------------------------------------
def _q8_text(params):
    return """
sort[oyear asc](
 project[<oyear : oyear,
          /(sum(project[ifthenelse(=(snation, "%(nation)s"),
                                   volume, 0.0)](%%group)),
            sum(project[volume](%%group))) : mkt_share>](
  nest[oyear](
   project[<year(order.orderdate) : oyear, %(rev)s : volume,
            supplier.nation.name : snation>](
    select[=(part.type, "%(type)s"),
           =(order.cust.nation.region.name, "%(region)s"),
           >=(order.orderdate, date("%(d1)s")),
           <=(order.orderdate, date("%(d2)s"))](Item)))))
""" % {"rev": _REVENUE, "nation": params["nation"],
       "type": params["type"], "region": params["region"],
       "d1": params["d1"], "d2": params["d2"]}


def _q8_selectivity(dataset, params):
    types = dataset.tables["part"]["type"][dataset.tables["item"]["part"]]
    return float(np.mean(types == params["type"]))


# ----------------------------------------------------------------------
# Q9 — profit per nation and year for parts of a colour
# ----------------------------------------------------------------------
def _q9_text(params):
    return """
sort[nation asc, oyear desc](
 project[<nation : nation, oyear : oyear,
          sum(project[amount](%%group)) : profit>](
  nest[nation, oyear](
   project[<%%1.supplier.nation.name : nation,
            year(%%1.order.orderdate) : oyear,
            -(*(%%1.extendedprice, -(1.0, %%1.discount)),
              *(%%2.%%2.cost, %%1.quantity)) : amount>](
    join[<supplier, part>, <%%1, %%2.part>](
     select[contains(part.name, "%(colour)s")](Item),
     unnest[supplies](Supplier))))))
""" % {"colour": params["colour"]}


def _q9_selectivity(dataset, params):
    names = dataset.tables["part"]["name"][dataset.tables["item"]["part"]]
    colour = params["colour"]
    return float(np.mean([colour in n for n in names]))


# ----------------------------------------------------------------------
# Q10 — top 20 customers with problematic (returned) parts
# ----------------------------------------------------------------------
def _q10_text(params):
    return """
top[20](sort[revenue desc](
 project[<cust : cust, cust.name : c_name, cust.acctbal : c_acctbal,
          cust.nation.name : n_name,
          sum(project[%(rev)s](%%group)) : revenue>](
  nest[order.cust : cust](
   select[=(returnflag, 'R'), >=(order.orderdate, date("%(d1)s")),
          <(order.orderdate, date("%(d2)s"))](Item)))))
""" % {"rev": _REVENUE, "d1": params["d1"], "d2": params["d2"]}


def _q10_selectivity(dataset, params):
    from ..monet.atoms import date_to_days
    item = dataset.tables["item"]
    odates = dataset.tables["orders"]["orderdate"][item["order"]]
    lo, hi = date_to_days(params["d1"]), date_to_days(params["d2"])
    mask = ((item["returnflag"] == "R") & (odates >= lo) & (odates < hi))
    return float(np.mean(mask))


# ----------------------------------------------------------------------
# Q11 — significant stock per nation (two-phase: total then filter)
# ----------------------------------------------------------------------
def _q11_german_supplies(params):
    return ('select[=(%%1.nation.name, "%(nation)s")]'
            "(unnest[supplies](Supplier))" % params)


def _q11_total_text(params):
    return ("sum(project[*(%%2.cost, %%2.available)](%s))"
            % _q11_german_supplies(params))


def _q11_main_text(params, threshold):
    grouped = ("nest[part](project[<%%2.part : part, "
               "*(%%2.cost, %%2.available) : pvalue>](%s))"
               % _q11_german_supplies(params))
    return """
sort[stock desc](
 select[>(stock, %(threshold)r)](
  project[<part : part, sum(project[pvalue](%%group)) : stock>](%(g)s)))
""" % {"threshold": float(threshold), "g": grouped}


def _q11_texts(params):
    return [_q11_total_text(params), _q11_main_text(params, 0.0)]


def _q11_run(db, params):
    total = db.query(_q11_total_text(params)).rows
    threshold = float(total) * params["fraction"]
    return db.query(_q11_main_text(params, threshold)).rows


# ----------------------------------------------------------------------
# Q12 — cheap shipping modes affecting critical orders
# ----------------------------------------------------------------------
def _q12_text(params):
    urgent = ('or(=(order.orderpriority, "1-URGENT"), ' \
              '=(order.orderpriority, "2-HIGH"))')
    return """
sort[shipmode asc](
 project[<shipmode : shipmode, sum(project[high](%%group)) : high_count,
          sum(project[low](%%group)) : low_count>](
  nest[shipmode](
   project[<shipmode : shipmode,
            ifthenelse(%(urgent)s, 1, 0) : high,
            ifthenelse(%(urgent)s, 0, 1) : low>](
    select[or(=(shipmode, "%(m1)s"), =(shipmode, "%(m2)s")),
           <(commitdate, receiptdate), <(shipdate, commitdate),
           >=(receiptdate, date("%(d1)s")),
           <(receiptdate, date("%(d2)s"))](Item)))))
""" % {"urgent": urgent, "m1": params["mode1"], "m2": params["mode2"],
       "d1": params["d1"], "d2": params["d2"]}


def _q12_selectivity(dataset, params):
    from ..monet.atoms import date_to_days
    item = dataset.tables["item"]
    lo, hi = date_to_days(params["d1"]), date_to_days(params["d2"])
    mask = (((item["shipmode"] == params["mode1"])
             | (item["shipmode"] == params["mode2"]))
            & (item["commitdate"] < item["receiptdate"])
            & (item["shipdate"] < item["commitdate"])
            & (item["receiptdate"] >= lo) & (item["receiptdate"] < hi))
    return float(np.mean(mask))


# ----------------------------------------------------------------------
# Q13 — loss due to returned orders of a clerk (the paper's example)
# ----------------------------------------------------------------------
def _q13_text(params):
    return """
sort[year asc](
 project[<date : year, sum(project[revenue](%%2)) : loss>](
  nest[date](
   project[<year(order.orderdate) : date, %(rev)s : revenue>](
    select[=(order.clerk, "%(clerk)s"), =(returnflag, 'R')](Item)))))
""" % {"rev": _REVENUE, "clerk": params["clerk"]}


def _q13_selectivity(dataset, params):
    item = dataset.tables["item"]
    clerks = dataset.tables["orders"]["clerk"][item["order"]]
    mask = (clerks == params["clerk"]) & (item["returnflag"] == "R")
    return float(np.mean(mask))


# ----------------------------------------------------------------------
# Q14 — market change after a campaign date (promo revenue share)
# ----------------------------------------------------------------------
def _q14_items(params):
    return ('select[>=(shipdate, date("%(d1)s")), '
            '<(shipdate, date("%(d2)s"))](Item)' % params)


def _q14_promo_text(params):
    return ("sum(project[ifthenelse(startswith(part.type, \"PROMO\"), "
            "%s, 0.0)](%s))" % (_REVENUE, _q14_items(params)))


def _q14_total_text(params):
    return "sum(project[%s](%s))" % (_REVENUE, _q14_items(params))


def _q14_texts(params):
    return [_q14_promo_text(params), _q14_total_text(params)]


def _q14_run(db, params):
    promo = float(db.query(_q14_promo_text(params)).rows)
    total = float(db.query(_q14_total_text(params)).rows)
    return 100.0 * promo / total if total else 0.0


def _q14_selectivity(dataset, params):
    from ..monet.atoms import date_to_days
    item = dataset.tables["item"]
    lo, hi = date_to_days(params["d1"]), date_to_days(params["d2"])
    return float(np.mean((item["shipdate"] >= lo)
                         & (item["shipdate"] < hi)))


# ----------------------------------------------------------------------
# Q15 — identify the top supplier (two-phase: max revenue, then match)
# ----------------------------------------------------------------------
def _q15_revenue_set(params):
    return ("project[<supplier : supplier, "
            "sum(project[%(rev)s](%%group)) : total_revenue>]("
            "nest[supplier](select[>=(shipdate, date(\"%(d1)s\")), "
            "<(shipdate, date(\"%(d2)s\"))](Item)))"
            % {"rev": _REVENUE, "d1": params["d1"], "d2": params["d2"]})


def _q15_max_text(params):
    return "max(project[total_revenue](%s))" % _q15_revenue_set(params)


def _q15_main_text(params, threshold):
    return """
sort[s_name asc](
 project[<supplier.name : s_name, supplier.address : s_address,
          supplier.phone : s_phone, total_revenue : total_revenue>](
  select[>=(total_revenue, %(threshold)r)](%(revs)s)))
""" % {"threshold": float(threshold), "revs": _q15_revenue_set(params)}


def _q15_texts(params):
    return [_q15_max_text(params), _q15_main_text(params, 0.0)]


def _q15_run(db, params):
    best = db.query(_q15_max_text(params)).rows
    if best is None:
        return []
    return db.query(_q15_main_text(params,
                                   float(best) * (1 - 1e-9))).rows


def _q15_selectivity(dataset, params):
    from ..monet.atoms import date_to_days
    item = dataset.tables["item"]
    lo, hi = date_to_days(params["d1"]), date_to_days(params["d2"])
    return float(np.mean((item["shipdate"] >= lo)
                         & (item["shipdate"] < hi)))


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
def _q(number, comment, builder, selectivity, defaults):
    texts, run = _single(builder)
    return TPCDQuery(number, comment, texts, run, selectivity, defaults)


QUERIES = {
    1: _q(1, "billing aggregates over the big table", _q1_text,
          _q1_selectivity, {"date": "1998-09-02"}),
    2: _q(2, "cheapest part supplier for a region", _q2_text, None,
          {"size": 15, "type": "BRASS", "region": "EUROPE"}),
    3: _q(3, "find top-10 valuable orders", _q3_text, _q3_selectivity,
          {"segment": "BUILDING", "date": "1995-03-15"}),
    4: _q(4, "priority assessment, customer satisfaction", _q4_text,
          _q4_selectivity, {"d1": "1993-07-01", "d2": "1993-10-01"}),
    5: _q(5, "revenue per local supplier", _q5_text, _q5_selectivity,
          {"region": "ASIA", "d1": "1994-01-01", "d2": "1995-01-01"}),
    6: TPCDQuery(6, "benefits if discounts abolished",
                 lambda p: [_q6_text(p)], _q6_run, _q6_selectivity,
                 {"d1": "1994-01-01", "d2": "1995-01-01",
                  "disc_lo": "0.05", "disc_hi": "0.07", "qty": 24}),
    7: _q(7, "value of shipped goods between 2 nations", _q7_text,
          _q7_selectivity, {"nation1": "FRANCE", "nation2": "GERMANY",
                            "d1": "1995-01-01", "d2": "1996-12-31"}),
    8: _q(8, "part market share change for a region", _q8_text,
          _q8_selectivity, {"nation": "BRAZIL", "region": "AMERICA",
                            "type": "ECONOMY ANODIZED STEEL",
                            "d1": "1995-01-01", "d2": "1996-12-31"}),
    9: _q(9, "line of parts profit for year and nation", _q9_text,
          _q9_selectivity, {"colour": "green"}),
    10: _q(10, "top-20 customers with problematic parts", _q10_text,
           _q10_selectivity, {"d1": "1993-10-01", "d2": "1994-01-01"}),
    11: TPCDQuery(11, "significant stock per nation", _q11_texts,
                  _q11_run, None,
                  {"nation": "GERMANY", "fraction": 0.0001}),
    12: _q(12, "cheap shipping affecting critical orders", _q12_text,
           _q12_selectivity, {"mode1": "MAIL", "mode2": "SHIP",
                              "d1": "1994-01-01", "d2": "1995-01-01"}),
    13: _q(13, "loss due to returned orders of a clerk", _q13_text,
           _q13_selectivity, {"clerk": "Clerk#000000001"}),
    14: TPCDQuery(14, "market change after a campaign date", _q14_texts,
                  _q14_run, _q14_selectivity,
                  {"d1": "1995-09-01", "d2": "1995-10-01"}),
    15: TPCDQuery(15, "identify the top supplier", _q15_texts, _q15_run,
                  _q15_selectivity,
                  {"d1": "1996-01-01", "d2": "1996-04-01"}),
}
