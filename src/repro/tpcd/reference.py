"""Independent reference implementations of TPC-D Q1-Q15.

Hand-written from the TPC-D specification semantics, over the columnar
``dataset.tables`` arrays — deliberately *not* sharing any code with
the MOA evaluator or the rewriter, so they form a third, independent
oracle: tests require  MOA-physical == MOA-logical == this module.

Row field names match the MOA formulations in
:mod:`repro.tpcd.queries`, so results compare directly with
:func:`repro.moa.values.sequences_equivalent`.
"""

import numpy as np

from ..monet.atoms import date_to_days
from ..moa.values import Ref, Row


def _rev(item, mask):
    return item["extendedprice"][mask] * (1.0 - item["discount"][mask])


def _group_sum(keys, values):
    """dict key -> sum of values, preserving float math."""
    out = {}
    for key, value in zip(keys, values):
        out[key] = out.get(key, 0.0) + float(value)
    return out


def q1(dataset, params):
    item = dataset.tables["item"]
    mask = item["shipdate"] <= date_to_days(params["date"])
    keys = list(zip(item["returnflag"][mask], item["linestatus"][mask]))
    qty = item["quantity"][mask]
    price = item["extendedprice"][mask]
    disc = item["discount"][mask]
    tax = item["tax"][mask]
    disc_price = price * (1.0 - disc)
    charge = disc_price * (1.0 + tax)
    groups = {}
    for position, key in enumerate(keys):
        groups.setdefault(key, []).append(position)
    rows = []
    for key in sorted(groups):
        positions = groups[key]
        n = len(positions)
        rows.append(Row([
            ("returnflag", key[0]), ("linestatus", key[1]),
            ("sum_qty", int(qty[positions].sum())),
            ("sum_base_price", float(price[positions].sum())),
            ("sum_disc_price", float(disc_price[positions].sum())),
            ("sum_charge", float(charge[positions].sum())),
            ("avg_qty", float(qty[positions].mean())),
            ("avg_price", float(price[positions].mean())),
            ("avg_disc", float(disc[positions].mean())),
            ("count_order", n),
        ]))
    return rows


def q2(dataset, params):
    part = dataset.tables["part"]
    supplier = dataset.tables["supplier"]
    nation = dataset.tables["nation"]
    region = dataset.tables["region"]
    ps = dataset.tables["partsupp"]
    part_ok = ((part["size"] == params["size"])
               & np.array([t.endswith(params["type"])
                           for t in part["type"]], dtype=bool))
    supp_region = region["name"][nation["region"][supplier["nation"]]]
    supp_ok = supp_region == params["region"]
    entry_ok = part_ok[ps["part"]] & supp_ok[ps["supplier"]]
    mincost = {}
    for position in np.nonzero(entry_ok)[0]:
        p = int(ps["part"][position])
        cost = float(ps["cost"][position])
        if p not in mincost or cost < mincost[p]:
            mincost[p] = cost
    rows = []
    for position in np.nonzero(entry_ok)[0]:
        p = int(ps["part"][position])
        cost = float(ps["cost"][position])
        if abs(cost - mincost[p]) > 1e-9:
            continue
        s = int(ps["supplier"][position])
        rows.append(Row([
            ("s_acctbal", float(supplier["acctbal"][s])),
            ("s_name", supplier["name"][s]),
            ("n_name", nation["name"][supplier["nation"][s]]),
            ("p_name", part["name"][p]),
            ("p_mfgr", part["manufacturer"][p]),
            ("s_address", supplier["address"][s]),
            ("s_phone", supplier["phone"][s]),
            ("cost", cost),
        ]))
    rows.sort(key=lambda r: (-r["s_acctbal"], r["n_name"], r["p_name"]))
    return rows[:100]


def q3(dataset, params):
    item = dataset.tables["item"]
    orders = dataset.tables["orders"]
    customer = dataset.tables["customer"]
    cutoff = date_to_days(params["date"])
    order_ok = ((customer["mktsegment"][orders["cust"]]
                 == params["segment"])
                & (orders["orderdate"] < cutoff))
    mask = (item["shipdate"] > cutoff) & order_ok[item["order"]]
    revenue = _group_sum(item["order"][mask].tolist(), _rev(item, mask))
    rows = [Row([("order", Ref("Order", o)),
                 ("revenue", total),
                 ("odate", int(orders["orderdate"][o])),
                 ("ship", orders["shippriority"][o])])
            for o, total in revenue.items()]
    rows.sort(key=lambda r: (-r["revenue"], r["odate"]))
    return rows[:10]


def q4(dataset, params):
    item = dataset.tables["item"]
    orders = dataset.tables["orders"]
    lo, hi = date_to_days(params["d1"]), date_to_days(params["d2"])
    late = set(item["order"][item["commitdate"]
                             < item["receiptdate"]].tolist())
    counts = {}
    for oid in range(len(orders["cust"])):
        if lo <= orders["orderdate"][oid] < hi and oid in late:
            priority = orders["orderpriority"][oid]
            counts[priority] = counts.get(priority, 0) + 1
    return [Row([("orderpriority", p), ("order_count", c)])
            for p, c in sorted(counts.items())]


def q5(dataset, params):
    item = dataset.tables["item"]
    orders = dataset.tables["orders"]
    customer = dataset.tables["customer"]
    supplier = dataset.tables["supplier"]
    nation = dataset.tables["nation"]
    region = dataset.tables["region"]
    lo, hi = date_to_days(params["d1"]), date_to_days(params["d2"])
    odate = orders["orderdate"][item["order"]]
    snat = supplier["nation"][item["supplier"]]
    cnat = customer["nation"][orders["cust"][item["order"]]]
    sregion = region["name"][nation["region"][snat]]
    mask = ((odate >= lo) & (odate < hi)
            & (sregion == params["region"]) & (snat == cnat))
    revenue = _group_sum(nation["name"][snat[mask]].tolist(),
                         _rev(item, mask))
    rows = [Row([("nation", n), ("revenue", v)])
            for n, v in revenue.items()]
    rows.sort(key=lambda r: -r["revenue"])
    return rows


def q6(dataset, params):
    item = dataset.tables["item"]
    lo, hi = date_to_days(params["d1"]), date_to_days(params["d2"])
    mask = ((item["shipdate"] >= lo) & (item["shipdate"] < hi)
            & (item["discount"] >= float(params["disc_lo"]) - 1e-9)
            & (item["discount"] <= float(params["disc_hi"]) + 1e-9)
            & (item["quantity"] < params["qty"]))
    return float((item["extendedprice"][mask]
                  * item["discount"][mask]).sum())


def q7(dataset, params):
    item = dataset.tables["item"]
    orders = dataset.tables["orders"]
    customer = dataset.tables["customer"]
    supplier = dataset.tables["supplier"]
    nation = dataset.tables["nation"]
    lo, hi = date_to_days(params["d1"]), date_to_days(params["d2"])
    snation = nation["name"][supplier["nation"][item["supplier"]]]
    cnation = nation["name"][
        customer["nation"][orders["cust"][item["order"]]]]
    n1, n2 = params["nation1"], params["nation2"]
    mask = ((item["shipdate"] >= lo) & (item["shipdate"] <= hi)
            & (((snation == n1) & (cnation == n2))
               | ((snation == n2) & (cnation == n1))))
    years = (np.asarray(item["shipdate"][mask], dtype="datetime64[D]")
             .astype("datetime64[Y]").astype(int) + 1970)
    keys = list(zip(snation[mask], cnation[mask], years.tolist()))
    revenue = _group_sum(keys, _rev(item, mask))
    rows = [Row([("supp_nation", k[0]), ("cust_nation", k[1]),
                 ("lyear", k[2]), ("revenue", v)])
            for k, v in revenue.items()]
    rows.sort(key=lambda r: (r["supp_nation"], r["cust_nation"],
                             r["lyear"]))
    return rows


def q8(dataset, params):
    item = dataset.tables["item"]
    orders = dataset.tables["orders"]
    customer = dataset.tables["customer"]
    supplier = dataset.tables["supplier"]
    nation = dataset.tables["nation"]
    region = dataset.tables["region"]
    part = dataset.tables["part"]
    lo, hi = date_to_days(params["d1"]), date_to_days(params["d2"])
    odate = orders["orderdate"][item["order"]]
    cregion = region["name"][nation["region"][
        customer["nation"][orders["cust"][item["order"]]]]]
    ptype = part["type"][item["part"]]
    mask = ((ptype == params["type"]) & (cregion == params["region"])
            & (odate >= lo) & (odate <= hi))
    years = (np.asarray(odate[mask], dtype="datetime64[D]")
             .astype("datetime64[Y]").astype(int) + 1970)
    snation = nation["name"][supplier["nation"][item["supplier"]]][mask]
    volume = _rev(item, mask)
    total = _group_sum(years.tolist(), volume)
    national = _group_sum(
        years.tolist(),
        np.where(snation == params["nation"], volume, 0.0))
    rows = [Row([("oyear", y), ("mkt_share", national[y] / total[y])])
            for y in sorted(total)]
    return rows


def q9(dataset, params):
    item = dataset.tables["item"]
    orders = dataset.tables["orders"]
    supplier = dataset.tables["supplier"]
    nation = dataset.tables["nation"]
    part = dataset.tables["part"]
    ps = dataset.tables["partsupp"]
    colour = params["colour"]
    part_ok = np.array([colour in n for n in part["name"]],
                       dtype=bool)
    mask = part_ok[item["part"]]
    cost_by_pair = {(int(p), int(s)): float(c)
                    for p, s, c in zip(ps["part"], ps["supplier"],
                                       ps["cost"])}
    years = (np.asarray(orders["orderdate"][item["order"]],
                        dtype="datetime64[D]")
             .astype("datetime64[Y]").astype(int) + 1970)
    snation = nation["name"][supplier["nation"][item["supplier"]]]
    profit = {}
    for position in np.nonzero(mask)[0]:
        pair = (int(item["part"][position]),
                int(item["supplier"][position]))
        cost = cost_by_pair[pair]
        amount = (float(item["extendedprice"][position])
                  * (1.0 - float(item["discount"][position]))
                  - cost * float(item["quantity"][position]))
        key = (snation[position], int(years[position]))
        profit[key] = profit.get(key, 0.0) + amount
    rows = [Row([("nation", k[0]), ("oyear", k[1]), ("profit", v)])
            for k, v in profit.items()]
    rows.sort(key=lambda r: (r["nation"], -r["oyear"]))
    return rows


def q10(dataset, params):
    item = dataset.tables["item"]
    orders = dataset.tables["orders"]
    customer = dataset.tables["customer"]
    nation = dataset.tables["nation"]
    lo, hi = date_to_days(params["d1"]), date_to_days(params["d2"])
    odate = orders["orderdate"][item["order"]]
    mask = ((item["returnflag"] == "R") & (odate >= lo) & (odate < hi))
    custs = orders["cust"][item["order"]][mask]
    revenue = _group_sum(custs.tolist(), _rev(item, mask))
    rows = [Row([("cust", Ref("Customer", c)),
                 ("c_name", customer["name"][c]),
                 ("c_acctbal", float(customer["acctbal"][c])),
                 ("n_name", nation["name"][customer["nation"][c]]),
                 ("revenue", v)])
            for c, v in revenue.items()]
    rows.sort(key=lambda r: -r["revenue"])
    return rows[:20]


def q11(dataset, params):
    supplier = dataset.tables["supplier"]
    nation = dataset.tables["nation"]
    ps = dataset.tables["partsupp"]
    german = (nation["name"][supplier["nation"][ps["supplier"]]]
              == params["nation"])
    value = ps["cost"] * ps["available"]
    total = float(value[german].sum())
    threshold = total * params["fraction"]
    stock = _group_sum(ps["part"][german].tolist(), value[german])
    rows = [Row([("part", Ref("Part", p)), ("stock", v)])
            for p, v in stock.items() if v > threshold]
    rows.sort(key=lambda r: -r["stock"])
    return rows


def q12(dataset, params):
    item = dataset.tables["item"]
    orders = dataset.tables["orders"]
    lo, hi = date_to_days(params["d1"]), date_to_days(params["d2"])
    mask = (((item["shipmode"] == params["mode1"])
             | (item["shipmode"] == params["mode2"]))
            & (item["commitdate"] < item["receiptdate"])
            & (item["shipdate"] < item["commitdate"])
            & (item["receiptdate"] >= lo) & (item["receiptdate"] < hi))
    priority = orders["orderpriority"][item["order"]][mask]
    urgent = np.isin(priority, ["1-URGENT", "2-HIGH"])
    modes = item["shipmode"][mask]
    high = _group_sum(modes.tolist(), urgent.astype(float))
    low = _group_sum(modes.tolist(), (~urgent).astype(float))
    return [Row([("shipmode", m), ("high_count", int(high[m])),
                 ("low_count", int(low[m]))])
            for m in sorted(high)]


def q13(dataset, params):
    item = dataset.tables["item"]
    orders = dataset.tables["orders"]
    clerks = orders["clerk"][item["order"]]
    mask = (clerks == params["clerk"]) & (item["returnflag"] == "R")
    years = (np.asarray(orders["orderdate"][item["order"]][mask],
                        dtype="datetime64[D]")
             .astype("datetime64[Y]").astype(int) + 1970)
    loss = _group_sum(years.tolist(), _rev(item, mask))
    return [Row([("year", y), ("loss", loss[y])]) for y in sorted(loss)]


def q14(dataset, params):
    item = dataset.tables["item"]
    part = dataset.tables["part"]
    lo, hi = date_to_days(params["d1"]), date_to_days(params["d2"])
    mask = (item["shipdate"] >= lo) & (item["shipdate"] < hi)
    revenue = _rev(item, mask)
    promo = np.array([t.startswith("PROMO")
                      for t in part["type"][item["part"]][mask]],
                     dtype=bool)
    total = float(revenue.sum())
    if total == 0:
        return 0.0
    return 100.0 * float(revenue[promo].sum()) / total


def q15(dataset, params):
    item = dataset.tables["item"]
    supplier = dataset.tables["supplier"]
    lo, hi = date_to_days(params["d1"]), date_to_days(params["d2"])
    mask = (item["shipdate"] >= lo) & (item["shipdate"] < hi)
    revenue = _group_sum(item["supplier"][mask].tolist(),
                         _rev(item, mask))
    if not revenue:
        return []
    best = max(revenue.values())
    rows = [Row([("s_name", supplier["name"][s]),
                 ("s_address", supplier["address"][s]),
                 ("s_phone", supplier["phone"][s]),
                 ("total_revenue", v)])
            for s, v in revenue.items() if v >= best * (1 - 1e-9)]
    rows.sort(key=lambda r: r["s_name"])
    return rows


REFERENCES = {1: q1, 2: q2, 3: q3, 4: q4, 5: q5, 6: q6, 7: q7, 8: q8,
              9: q9, 10: q10, 11: q11, 12: q12, 13: q13, 14: q14,
              15: q15}


def reference(number, dataset, params):
    """Run the reference implementation of one query."""
    return REFERENCES[number](dataset, params)
