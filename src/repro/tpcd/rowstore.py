"""N-ary row-store baseline: the paper's "relational strategy".

Section 5.2.2 compares Monet's decomposed storage against "a
relational strategy where the database table is stored without
decomposition": rows of ``(n+1)*w`` bytes, selections through an
inverted-list index of ``2w``-byte entries, and *unclustered* row
fetches afterwards.  This module implements exactly that engine over
the columnar TPC-D arrays:

* every table is one row-major heap of ``(n_cols + 1) * w`` bytes per
  row — touching **any** column of a row faults the whole row in,
  which is the asymmetry the paper exploits;
* every column has an inverted-list index (value-sorted permutation),
  charged at ``2w`` bytes per entry, the ``C_inv`` of the model;
* the planner picks index-selection vs full scan on estimated
  selectivity, then fetches qualifying rows unclustered.

All 15 TPC-D queries are implemented against this engine, so Figure 9
can report baseline wall-clock *and* simulated page faults next to the
flattened Monet execution.
"""

import numpy as np

from ..errors import CatalogError
from ..monet.atoms import date_to_days
from ..monet.buffer import get_manager
from ..monet.heap import Heap
from ..monet.storage import as_backend
from ..moa.values import Ref, Row

#: uniform value width of the cost model (section 5.2.2: w = 4)
VALUE_WIDTH = 4

#: storage-name prefix of persisted row-store columns (kept distinct
#: from the kernel's heap files, pruned through the manifest keep-set)
ROWSTORE_PREFIX = "_rowstore."


class _TableHeap(Heap):
    def __init__(self, nbytes, label):
        super().__init__(label)
        self._nbytes = nbytes
        self.persistent = True

    @property
    def nbytes(self):
        return self._nbytes


class RowTable:
    """One n-ary table: row heap + per-column inverted lists."""

    def __init__(self, name, columns):
        self.name = name
        self.columns = columns
        self.n_rows = len(next(iter(columns.values()))) if columns else 0
        self.row_width = (len(columns) + 1) * VALUE_WIDTH
        self.heap = _TableHeap(self.n_rows * self.row_width,
                               "row:" + name)
        self._indexes = {}

    def index(self, column):
        """(sorted values, permutation) inverted list for a column."""
        cached = self._indexes.get(column)
        if cached is None:
            values = self.columns[column]
            order = np.argsort(values, kind="stable")
            cached = (values[order], order,
                      _TableHeap(self.n_rows * 2 * VALUE_WIDTH,
                                 "inv:%s.%s" % (self.name, column)))
            self._indexes[column] = cached
        return cached


class RowStore:
    """The baseline engine + its 15 query implementations.

    Constructed from a generated :class:`~repro.tpcd.dbgen.TPCDDataset`
    or from a plain ``{table: {column: array}}`` dict — the latter is
    what :func:`open_rowstore` reconstructs from a persisted database
    directory, so the Figure 9 baseline warm-starts exactly like the
    flattened engine.
    """

    def __init__(self, dataset):
        tables = getattr(dataset, "tables", dataset)
        self.dataset = dataset if hasattr(dataset, "tables") else None
        self.tables = {name: RowTable(name, columns)
                       for name, columns in tables.items()}
        #: shared-catalog generation, set by :func:`open_rowstore`
        self.generation = None

    # ------------------------------------------------------------------
    # access paths (where the page charging happens)
    # ------------------------------------------------------------------
    def select_rows(self, table_name, column, lo=None, hi=None, eq=None,
                    isin=None):
        """Qualifying row ids via inverted list or scan (cost-based)."""
        table = self.tables[table_name]
        manager = get_manager()
        values = table.columns[column]
        if eq is not None:
            mask = values == eq
        elif isin is not None:
            mask = np.isin(values, list(isin))
        else:
            mask = np.ones(table.n_rows, dtype=bool)
            if lo is not None:
                mask &= values >= lo
            if hi is not None:
                mask &= values < hi
        row_ids = np.nonzero(mask)[0]
        selectivity = len(row_ids) / max(1, table.n_rows)
        with manager.operator("rel.select"):
            if isin is None and selectivity < 0.5:
                # inverted list: touch ceil(s*X / C_inv) index pages
                _sorted, _perm, index_heap = table.index(column)
                manager.access_range(index_heap, 0,
                                     len(row_ids) * 2 * VALUE_WIDTH)
            else:
                manager.access_heap(table.heap)
        return row_ids

    def fetch(self, table_name, row_ids, columns):
        """Unclustered row fetch: whole rows fault in (the row-store
        penalty); returns the requested column arrays."""
        table = self.tables[table_name]
        manager = get_manager()
        with manager.operator("rel.fetch"):
            manager.access_positions(table.heap, row_ids,
                                     table.row_width)
        return {column: table.columns[column][row_ids]
                for column in columns}

    def scan(self, table_name, columns):
        """Full scan: the whole row heap faults in."""
        table = self.tables[table_name]
        manager = get_manager()
        with manager.operator("rel.scan"):
            manager.access_heap(table.heap)
        return {column: table.columns[column] for column in columns}

    def all_rows(self, table_name):
        return np.arange(self.tables[table_name].n_rows)

    # ------------------------------------------------------------------
    # query implementations
    # ------------------------------------------------------------------
    def run(self, number, params):
        return getattr(self, "q%d" % number)(params)

    def q1(self, params):
        cutoff = date_to_days(params["date"])
        rows = self.select_rows("item", "shipdate", hi=cutoff + 1)
        cols = self.fetch("item", rows,
                          ["returnflag", "linestatus", "quantity",
                           "extendedprice", "discount", "tax"])
        keys = list(zip(cols["returnflag"], cols["linestatus"]))
        disc_price = cols["extendedprice"] * (1.0 - cols["discount"])
        charge = disc_price * (1.0 + cols["tax"])
        groups = {}
        for position, key in enumerate(keys):
            groups.setdefault(key, []).append(position)
        out = []
        for key in sorted(groups):
            g = groups[key]
            out.append(Row([
                ("returnflag", key[0]), ("linestatus", key[1]),
                ("sum_qty", int(cols["quantity"][g].sum())),
                ("sum_base_price", float(cols["extendedprice"][g].sum())),
                ("sum_disc_price", float(disc_price[g].sum())),
                ("sum_charge", float(charge[g].sum())),
                ("avg_qty", float(cols["quantity"][g].mean())),
                ("avg_price", float(cols["extendedprice"][g].mean())),
                ("avg_disc", float(cols["discount"][g].mean())),
                ("count_order", len(g))]))
        return out

    def q2(self, params):
        part_rows = self.select_rows("part", "size", eq=params["size"])
        part_cols = self.fetch("part", part_rows,
                               ["type", "name", "manufacturer"])
        type_ok = np.array([t.endswith(params["type"])
                            for t in part_cols["type"]], dtype=bool)
        parts = part_rows[type_ok]
        nat = self.scan("nation", ["region", "name"])
        reg = self.scan("region", ["name"])
        sup = self.scan("supplier", ["nation", "acctbal", "name",
                                     "address", "phone"])
        supp_ok = reg["name"][nat["region"][sup["nation"]]] \
            == params["region"]
        ps_rows = self.select_rows("partsupp", "part", isin=set(parts))
        ps = self.fetch("partsupp", ps_rows,
                        ["part", "supplier", "cost"])
        ok = supp_ok[ps["supplier"]]
        mincost = {}
        for p, c in zip(ps["part"][ok], ps["cost"][ok]):
            if p not in mincost or c < mincost[p]:
                mincost[int(p)] = float(c)
        name_of = dict(zip(part_rows.tolist(), part_cols["name"]))
        mfgr_of = dict(zip(part_rows.tolist(), part_cols["manufacturer"]))
        out = []
        for p, s, c in zip(ps["part"][ok], ps["supplier"][ok],
                           ps["cost"][ok]):
            if abs(float(c) - mincost[int(p)]) > 1e-9:
                continue
            out.append(Row([
                ("s_acctbal", float(sup["acctbal"][s])),
                ("s_name", sup["name"][s]),
                ("n_name", nat["name"][sup["nation"][s]]),
                ("p_name", name_of[int(p)]),
                ("p_mfgr", mfgr_of[int(p)]),
                ("s_address", sup["address"][s]),
                ("s_phone", sup["phone"][s]),
                ("cost", float(c))]))
        out.sort(key=lambda r: (-r["s_acctbal"], r["n_name"], r["p_name"]))
        return out[:100]

    def q3(self, params):
        cutoff = date_to_days(params["date"])
        cust = self.scan("customer", ["mktsegment"])
        order_rows = self.select_rows("orders", "orderdate", hi=cutoff)
        orders = self.fetch("orders", order_rows,
                            ["cust", "orderdate", "shippriority"])
        seg_ok = cust["mktsegment"][orders["cust"]] == params["segment"]
        ok_orders = set(order_rows[seg_ok].tolist())
        item_rows = self.select_rows("item", "shipdate", lo=cutoff + 1)
        items = self.fetch("item", item_rows,
                           ["order", "extendedprice", "discount"])
        odate = dict(zip(order_rows[seg_ok].tolist(),
                         orders["orderdate"][seg_ok].tolist()))
        oship = dict(zip(order_rows[seg_ok].tolist(),
                         orders["shippriority"][seg_ok]))
        revenue = {}
        for o, p, d in zip(items["order"], items["extendedprice"],
                           items["discount"]):
            o = int(o)
            if o in ok_orders:
                revenue[o] = revenue.get(o, 0.0) + float(p) * (1 - d)
        out = [Row([("order", Ref("Order", o)), ("revenue", v),
                    ("odate", int(odate[o])), ("ship", oship[o])])
               for o, v in revenue.items()]
        out.sort(key=lambda r: (-r["revenue"], r["odate"]))
        return out[:10]

    def q4(self, params):
        lo, hi = date_to_days(params["d1"]), date_to_days(params["d2"])
        item = self.scan("item", ["order", "commitdate", "receiptdate"])
        late = set(item["order"][item["commitdate"]
                                 < item["receiptdate"]].tolist())
        order_rows = self.select_rows("orders", "orderdate", lo=lo, hi=hi)
        orders = self.fetch("orders", order_rows, ["orderpriority"])
        counts = {}
        for row_id, priority in zip(order_rows, orders["orderpriority"]):
            if int(row_id) in late:
                counts[priority] = counts.get(priority, 0) + 1
        return [Row([("orderpriority", p), ("order_count", c)])
                for p, c in sorted(counts.items())]

    def q5(self, params):
        lo, hi = date_to_days(params["d1"]), date_to_days(params["d2"])
        order_rows = self.select_rows("orders", "orderdate", lo=lo, hi=hi)
        orders = self.fetch("orders", order_rows, ["cust"])
        cust = self.scan("customer", ["nation"])
        sup = self.scan("supplier", ["nation"])
        nat = self.scan("nation", ["region", "name"])
        reg = self.scan("region", ["name"])
        order_ok = set(order_rows.tolist())
        cnat_of = dict(zip(order_rows.tolist(),
                           cust["nation"][orders["cust"]].tolist()))
        item = self.scan("item", ["order", "supplier", "extendedprice",
                                  "discount"])
        revenue = {}
        region_names = reg["name"][nat["region"]]
        for o, s, p, d in zip(item["order"], item["supplier"],
                              item["extendedprice"], item["discount"]):
            o = int(o)
            if o not in order_ok:
                continue
            snat = int(sup["nation"][s])
            if snat != cnat_of[o]:
                continue
            if region_names[snat] != params["region"]:
                continue
            key = nat["name"][snat]
            revenue[key] = revenue.get(key, 0.0) + float(p) * (1 - d)
        out = [Row([("nation", n), ("revenue", v)])
               for n, v in revenue.items()]
        out.sort(key=lambda r: -r["revenue"])
        return out

    def q6(self, params):
        lo, hi = date_to_days(params["d1"]), date_to_days(params["d2"])
        rows = self.select_rows("item", "shipdate", lo=lo, hi=hi)
        cols = self.fetch("item", rows,
                          ["discount", "quantity", "extendedprice"])
        mask = ((cols["discount"] >= float(params["disc_lo"]) - 1e-9)
                & (cols["discount"] <= float(params["disc_hi"]) + 1e-9)
                & (cols["quantity"] < params["qty"]))
        return float((cols["extendedprice"][mask]
                      * cols["discount"][mask]).sum())

    def q7(self, params):
        lo, hi = date_to_days(params["d1"]), date_to_days(params["d2"])
        rows = self.select_rows("item", "shipdate", lo=lo, hi=hi + 1)
        items = self.fetch("item", rows, ["order", "supplier",
                                          "extendedprice", "discount",
                                          "shipdate"])
        sup = self.scan("supplier", ["nation"])
        nat = self.scan("nation", ["name"])
        orders = self.scan("orders", ["cust"])
        cust = self.scan("customer", ["nation"])
        snation = nat["name"][sup["nation"][items["supplier"]]]
        cnation = nat["name"][cust["nation"][orders["cust"][
            items["order"]]]]
        n1, n2 = params["nation1"], params["nation2"]
        mask = (((snation == n1) & (cnation == n2))
                | ((snation == n2) & (cnation == n1)))
        years = (np.asarray(items["shipdate"][mask],
                            dtype="datetime64[D]")
                 .astype("datetime64[Y]").astype(int) + 1970)
        revenue = {}
        volume = (items["extendedprice"][mask]
                  * (1 - items["discount"][mask]))
        for key, v in zip(zip(snation[mask], cnation[mask],
                              years.tolist()), volume):
            revenue[key] = revenue.get(key, 0.0) + float(v)
        out = [Row([("supp_nation", k[0]), ("cust_nation", k[1]),
                    ("lyear", k[2]), ("revenue", v)])
               for k, v in revenue.items()]
        out.sort(key=lambda r: (r["supp_nation"], r["cust_nation"],
                                r["lyear"]))
        return out

    def q8(self, params):
        lo, hi = date_to_days(params["d1"]), date_to_days(params["d2"])
        part_rows = self.select_rows("part", "type", eq=params["type"])
        part_set = set(part_rows.tolist())
        item = self.scan("item", ["part", "order", "supplier",
                                  "extendedprice", "discount"])
        orders = self.scan("orders", ["cust", "orderdate"])
        cust = self.scan("customer", ["nation"])
        sup = self.scan("supplier", ["nation"])
        nat = self.scan("nation", ["region", "name"])
        reg = self.scan("region", ["name"])
        odate = orders["orderdate"][item["order"]]
        cregion = reg["name"][nat["region"][cust["nation"][
            orders["cust"][item["order"]]]]]
        mask = (np.isin(item["part"], part_rows)
                & (cregion == params["region"])
                & (odate >= lo) & (odate <= hi))
        years = (np.asarray(odate[mask], dtype="datetime64[D]")
                 .astype("datetime64[Y]").astype(int) + 1970)
        snation = nat["name"][sup["nation"][item["supplier"]]][mask]
        volume = (item["extendedprice"][mask]
                  * (1 - item["discount"][mask]))
        total, national = {}, {}
        for y, n, v in zip(years.tolist(), snation, volume):
            total[y] = total.get(y, 0.0) + float(v)
            if n == params["nation"]:
                national[y] = national.get(y, 0.0) + float(v)
        return [Row([("oyear", y),
                     ("mkt_share", national.get(y, 0.0) / total[y])])
                for y in sorted(total)]

    def q9(self, params):
        part = self.scan("part", ["name"])
        colour = params["colour"]
        part_ok = np.array([colour in n for n in part["name"]],
                       dtype=bool)
        item = self.scan("item", ["part", "supplier", "order",
                                  "quantity", "extendedprice",
                                  "discount"])
        ps = self.scan("partsupp", ["part", "supplier", "cost"])
        orders = self.scan("orders", ["orderdate"])
        sup = self.scan("supplier", ["nation"])
        nat = self.scan("nation", ["name"])
        cost_of = {(int(p), int(s)): float(c)
                   for p, s, c in zip(ps["part"], ps["supplier"],
                                      ps["cost"])}
        mask = part_ok[item["part"]]
        years = (np.asarray(orders["orderdate"][item["order"]],
                            dtype="datetime64[D]")
                 .astype("datetime64[Y]").astype(int) + 1970)
        snation = nat["name"][sup["nation"][item["supplier"]]]
        profit = {}
        for position in np.nonzero(mask)[0]:
            cost = cost_of[(int(item["part"][position]),
                            int(item["supplier"][position]))]
            amount = (float(item["extendedprice"][position])
                      * (1 - float(item["discount"][position]))
                      - cost * float(item["quantity"][position]))
            key = (snation[position], int(years[position]))
            profit[key] = profit.get(key, 0.0) + amount
        out = [Row([("nation", k[0]), ("oyear", k[1]), ("profit", v)])
               for k, v in profit.items()]
        out.sort(key=lambda r: (r["nation"], -r["oyear"]))
        return out

    def q10(self, params):
        lo, hi = date_to_days(params["d1"]), date_to_days(params["d2"])
        item_rows = self.select_rows("item", "returnflag", eq="R")
        items = self.fetch("item", item_rows,
                           ["order", "extendedprice", "discount"])
        orders = self.scan("orders", ["cust", "orderdate"])
        cust = self.scan("customer", ["name", "acctbal", "nation"])
        nat = self.scan("nation", ["name"])
        odate = orders["orderdate"][items["order"]]
        mask = (odate >= lo) & (odate < hi)
        custs = orders["cust"][items["order"]][mask]
        revenue = {}
        volume = (items["extendedprice"][mask]
                  * (1 - items["discount"][mask]))
        for c, v in zip(custs.tolist(), volume):
            revenue[c] = revenue.get(c, 0.0) + float(v)
        out = [Row([("cust", Ref("Customer", c)),
                    ("c_name", cust["name"][c]),
                    ("c_acctbal", float(cust["acctbal"][c])),
                    ("n_name", nat["name"][cust["nation"][c]]),
                    ("revenue", v)])
               for c, v in revenue.items()]
        out.sort(key=lambda r: -r["revenue"])
        return out[:20]

    def q11(self, params):
        sup = self.scan("supplier", ["nation"])
        nat = self.scan("nation", ["name"])
        ps = self.scan("partsupp", ["part", "supplier", "cost",
                                    "available"])
        german = nat["name"][sup["nation"][ps["supplier"]]] \
            == params["nation"]
        value = ps["cost"] * ps["available"]
        total = float(value[german].sum())
        threshold = total * params["fraction"]
        stock = {}
        for p, v in zip(ps["part"][german].tolist(), value[german]):
            stock[p] = stock.get(p, 0.0) + float(v)
        out = [Row([("part", Ref("Part", p)), ("stock", v)])
               for p, v in stock.items() if v > threshold]
        out.sort(key=lambda r: -r["stock"])
        return out

    def q12(self, params):
        lo, hi = date_to_days(params["d1"]), date_to_days(params["d2"])
        rows = self.select_rows("item", "receiptdate", lo=lo, hi=hi)
        items = self.fetch("item", rows,
                           ["shipmode", "commitdate", "receiptdate",
                            "shipdate", "order"])
        mask = (((items["shipmode"] == params["mode1"])
                 | (items["shipmode"] == params["mode2"]))
                & (items["commitdate"] < items["receiptdate"])
                & (items["shipdate"] < items["commitdate"]))
        orders = self.scan("orders", ["orderpriority"])
        priority = orders["orderpriority"][items["order"][mask]]
        urgent = np.isin(priority, ["1-URGENT", "2-HIGH"])
        modes = items["shipmode"][mask]
        high, low = {}, {}
        for m, u in zip(modes, urgent):
            high[m] = high.get(m, 0) + int(u)
            low[m] = low.get(m, 0) + int(not u)
        return [Row([("shipmode", m), ("high_count", high[m]),
                     ("low_count", low[m])]) for m in sorted(high)]

    def q13(self, params):
        order_rows = self.select_rows("orders", "clerk",
                                      eq=params["clerk"])
        orders = self.fetch("orders", order_rows, ["orderdate"])
        odate_of = dict(zip(order_rows.tolist(),
                            orders["orderdate"].tolist()))
        item_rows = self.select_rows("item", "order",
                                     isin=set(order_rows.tolist()))
        items = self.fetch("item", item_rows,
                           ["order", "returnflag", "extendedprice",
                            "discount"])
        mask = items["returnflag"] == "R"
        loss = {}
        for o, p, d in zip(items["order"][mask],
                           items["extendedprice"][mask],
                           items["discount"][mask]):
            year = (np.datetime64(int(odate_of[int(o)]), "D")
                    .astype("datetime64[Y]").astype(int) + 1970)
            loss[int(year)] = loss.get(int(year), 0.0) \
                + float(p) * (1 - d)
        return [Row([("year", y), ("loss", loss[y])])
                for y in sorted(loss)]

    def q14(self, params):
        lo, hi = date_to_days(params["d1"]), date_to_days(params["d2"])
        rows = self.select_rows("item", "shipdate", lo=lo, hi=hi)
        items = self.fetch("item", rows,
                           ["part", "extendedprice", "discount"])
        part = self.scan("part", ["type"])
        revenue = items["extendedprice"] * (1 - items["discount"])
        promo = np.array([t.startswith("PROMO")
                          for t in part["type"][items["part"]]],
                         dtype=bool)
        total = float(revenue.sum())
        if total == 0:
            return 0.0
        return 100.0 * float(revenue[promo].sum()) / total

    def q15(self, params):
        lo, hi = date_to_days(params["d1"]), date_to_days(params["d2"])
        rows = self.select_rows("item", "shipdate", lo=lo, hi=hi)
        items = self.fetch("item", rows,
                           ["supplier", "extendedprice", "discount"])
        sup = self.scan("supplier", ["name", "address", "phone"])
        revenue = {}
        volume = items["extendedprice"] * (1 - items["discount"])
        for s, v in zip(items["supplier"].tolist(), volume):
            revenue[s] = revenue.get(s, 0.0) + float(v)
        if not revenue:
            return []
        best = max(revenue.values())
        out = [Row([("s_name", sup["name"][s]),
                    ("s_address", sup["address"][s]),
                    ("s_phone", sup["phone"][s]),
                    ("total_revenue", v)])
               for s, v in revenue.items() if v >= best * (1 - 1e-9)]
        out.sort(key=lambda r: r["s_name"])
        return out


# ----------------------------------------------------------------------
# persistence (ROADMAP "Row-store baseline parity")
# ----------------------------------------------------------------------
def save_rowstore_tables(target, tables, prefix=""):
    """Write the n-ary base tables through a HeapStorage backend.

    One raw little-endian file per column (``[<prefix>]_rowstore.
    <table>.<column>.col``); object-dtype string columns are stored as
    fixed-width unicode and flagged so :func:`open_rowstore` restores
    the original dtype.  ``prefix`` should be the upcoming save's
    :func:`~repro.monet.storage.generation_prefix` (the caller holds
    the exclusive lock), so these files are generation-scoped exactly
    like the kernel heaps and a crashed save never overwrites the
    previous generation's columns.  Returns the manifest ``rowstore``
    section — pass it to ``save_kernel(..., extra={"rowstore":
    section})`` so the files join the manifest's prune keep-set and
    the section survives re-saves atomically with the rest of the
    catalog.
    """
    backend = as_backend(target)
    section = {"tables": {}}
    for table_name, columns in sorted(tables.items()):
        entry = {}
        for column_name, values in sorted(columns.items()):
            values = np.asarray(values)
            spec = {"length": int(len(values))}
            if values.dtype == object:
                values = values.astype("U")
                spec["object"] = True
            file_name = "%s%s%s.%s.col" % (prefix, ROWSTORE_PREFIX,
                                           table_name, column_name)
            backend.write_array(file_name, values)
            stored = values.dtype.str
            if stored.startswith(">"):
                stored = "<" + stored[1:]
            spec.update({"file": file_name, "dtype": stored})
            entry[column_name] = spec
        section["tables"][table_name] = entry
    return section


def open_rowstore(target, expected_generation=None, lock_timeout=None):
    """Reconstruct the Figure 9 baseline from a persisted database.

    Reads the manifest's ``rowstore`` section (written by
    ``save_tpcd``); raises :class:`~repro.errors.CatalogError` when
    the directory was saved without the baseline.  Columns come back
    as ``np.memmap`` views of the stored files (strings decode to the
    original object dtype), so the row-store comparator warm-starts
    without dbgen — parity with the flattened engine's ``open_tpcd``,
    shared-catalog protocol included: the manifest is read and its
    column files mapped under the shared lock, ``expected_generation``
    pins the snapshot (so a fleet comparing both engines provably
    measures one generation), and lock-free readers get the same
    retry-on-rewrite behaviour as ``open_kernel``.
    """
    from ..monet.storage import open_with_protocol

    backend = as_backend(target)
    store, generation = open_with_protocol(
        backend, lambda manifest: _map_rowstore(backend, manifest),
        expected_generation=expected_generation,
        lock_timeout=lock_timeout)
    store.generation = generation
    return store


def _map_rowstore(backend, manifest):
    section = manifest.get("rowstore")
    if not isinstance(section, dict) or "tables" not in section:
        raise CatalogError("no rowstore section in the catalog "
                           "manifest (saved before the baseline was "
                           "persisted?)")
    tables = {}
    for table_name, entry in sorted(section["tables"].items()):
        columns = {}
        for column_name, spec in sorted(entry.items()):
            try:
                values = backend.read_array(spec["file"], spec["dtype"],
                                            spec["length"])
            except KeyError as exc:
                raise CatalogError("rowstore column spec misses key %s"
                                   % exc) from None
            if spec.get("object"):
                values = values.astype(object)
            columns[column_name] = values
        tables[table_name] = columns
    return RowStore(tables)
