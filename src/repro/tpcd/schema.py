"""The nested MOA schema for TPC-D — the paper's Figure 1, verbatim.

The relational TPC-D schema is reformulated object-orientedly: orders
own a *set* of items, customers own a *set* of orders, and a supplier
owns a *set* of ``<part, cost, available>`` tuples (the PARTSUPP
table); the SQL GROUP BY maps to MOA's nesting.
"""

from ..moa.schema import Schema, ref, setof, tupleof
from ..moa.types import CHAR, DOUBLE, INSTANT, INT, STRING


def tpcd_schema():
    """Build the Figure 1 schema."""
    schema = Schema()
    schema.define("Region", [
        ("name", STRING),
        ("comment", STRING),
    ])
    schema.define("Nation", [
        ("name", STRING),
        ("region", ref("Region")),
    ])
    schema.define("Part", [
        ("name", STRING),
        ("manufacturer", STRING),
        ("brand", STRING),
        ("type", STRING),
        ("size", INT),
        ("container", STRING),
        ("retailPrice", DOUBLE),
    ])
    schema.define("Supplier", [
        ("name", STRING),
        ("address", STRING),
        ("phone", STRING),
        ("acctbal", DOUBLE),
        ("nation", ref("Nation")),
        ("supplies", setof(tupleof(
            ("part", ref("Part")),
            ("cost", DOUBLE),
            ("available", INT),
        ))),
    ])
    schema.define("Customer", [
        ("name", STRING),
        ("address", STRING),
        ("phone", STRING),
        ("acctbal", DOUBLE),
        ("nation", ref("Nation")),
        ("mktsegment", STRING),
        ("orders", setof(ref("Order"))),
    ])
    schema.define("Order", [
        ("cust", ref("Customer")),
        ("item", setof(ref("Item"))),
        ("status", CHAR),
        ("totalprice", DOUBLE),
        ("orderdate", INSTANT),
        ("orderpriority", STRING),
        ("clerk", STRING),
        ("shippriority", STRING),
    ])
    schema.define("Item", [
        ("part", ref("Part")),
        ("supplier", ref("Supplier")),
        ("order", ref("Order")),
        ("quantity", INT),
        ("returnflag", CHAR),
        ("linestatus", CHAR),
        ("extendedprice", DOUBLE),
        ("discount", DOUBLE),
        ("tax", DOUBLE),
        ("shipdate", INSTANT),
        ("commitdate", INSTANT),
        ("receiptdate", INSTANT),
        ("shipmode", STRING),
        ("shipinstruct", STRING),
    ])
    return schema.validate()
