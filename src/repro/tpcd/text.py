"""Value pools for the TPC-D data generator (DBGEN equivalents).

The lists follow the TPC-D 1.x specification's seed text where it
matters for the queries (segments, priorities, ship modes, part type
words, region/nation names); purely cosmetic strings (addresses,
comments) are synthesised.
"""

REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]

#: nation -> region index, the 25 nations of the TPC-D spec
NATIONS = [
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1),
    ("EGYPT", 4), ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3),
    ("INDIA", 2), ("INDONESIA", 2), ("IRAN", 4), ("IRAQ", 4),
    ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0), ("MOROCCO", 0),
    ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3),
    ("UNITED KINGDOM", 3), ("UNITED STATES", 1),
]

MARKET_SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY",
                   "HOUSEHOLD"]

ORDER_PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED",
                    "5-LOW"]

SHIP_MODES = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"]

SHIP_INSTRUCTIONS = ["DELIVER IN PERSON", "COLLECT COD", "NONE",
                     "TAKE BACK RETURN"]

#: part type = one word from each list ("PROMO BURNISHED BRASS")
TYPE_SYLLABLE_1 = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY",
                   "PROMO"]
TYPE_SYLLABLE_2 = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED",
                   "BRUSHED"]
TYPE_SYLLABLE_3 = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"]

CONTAINERS_1 = ["SM", "LG", "MED", "JUMBO", "WRAP"]
CONTAINERS_2 = ["CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"]

#: colours used in part names (Q9 selects parts whose name contains a
#: colour word, e.g. "green")
PART_COLOURS = ["almond", "antique", "aquamarine", "azure", "beige",
                "bisque", "black", "blanched", "blue", "blush", "brown",
                "burlywood", "burnished", "chartreuse", "chiffon",
                "chocolate", "coral", "cornflower", "cornsilk", "cream",
                "cyan", "dark", "deep", "dim", "dodger", "drab", "firebrick",
                "floral", "forest", "frosted", "gainsboro", "ghost",
                "goldenrod", "green", "grey", "honeydew", "hot", "indian",
                "ivory", "khaki", "lace", "lavender", "lawn", "lemon",
                "light", "lime", "linen", "magenta", "maroon", "medium",
                "metallic", "midnight", "mint", "misty", "moccasin",
                "navajo", "navy", "olive", "orange", "orchid", "pale",
                "papaya", "peach", "peru", "pink", "plum", "powder",
                "puff", "purple", "red", "rose", "rosy", "royal", "saddle",
                "salmon", "sandy", "seashell", "sienna", "sky", "slate",
                "smoke", "snow", "spring", "steel", "tan", "thistle",
                "tomato", "turquoise", "violet", "wheat", "white", "yellow"]


def clerk_name(index):
    """TPC-D clerk name format."""
    return "Clerk#%09d" % index


def supplier_name(index):
    return "Supplier#%09d" % index


def customer_name(index):
    return "Customer#%09d" % index


def phone(nation_index, sequence):
    """``NN-XXX-XXX-XXXX`` phone, nation-coded like the spec."""
    return "%02d-%03d-%03d-%04d" % (
        10 + nation_index, 100 + sequence % 900,
        100 + (sequence * 7) % 900, 1000 + (sequence * 13) % 9000)


def brand(manufacturer, sequence):
    return "Brand#%d%d" % (manufacturer, 1 + sequence % 5)
