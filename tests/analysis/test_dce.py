"""Dead-code elimination: flag-gated, liveness-driven, bit-identical.

The optimizer's ``eliminate_dead`` flag (off by default) lets the
rewriter drop MIL statements whose results the result representation
never observes, using the verifier's liveness pass.  The contract:

* **off by default** — a vanilla compile emits the paper's plans
  verbatim;
* **differential** — with DCE on, every TPC-D query (every phase)
  produces a bit-identical result checksum to the unoptimized run;
* **observable** — the pass records ``dce:removed`` in the optimizer
  stats, and really does remove something on at least one query
  (Q2 and Q15 carry dead staging statements today).
"""

from repro.monet.multiproc import result_checksum, ship_value
from repro.monet.optimizer import Optimizer, get_optimizer, use
from repro.tpcd import QUERIES


def test_dce_is_off_by_default():
    assert get_optimizer().eliminate_dead is False
    assert Optimizer().eliminate_dead is False


def test_dce_differential_all_tpcd_queries(tiny_tpcd_db):
    baseline = {number: result_checksum(
        ship_value(QUERIES[number].run(tiny_tpcd_db)))
        for number in sorted(QUERIES)}
    optimizer = Optimizer(eliminate_dead=True)
    with use(optimizer):
        optimized = {number: result_checksum(
            ship_value(QUERIES[number].run(tiny_tpcd_db)))
            for number in sorted(QUERIES)}
    assert optimized == baseline
    assert optimizer.stats["dce:removed"] >= 1, \
        "the DCE pass never removed anything: the differential is " \
        "vacuous"


def test_dce_shrinks_a_plan_and_it_still_verifies(tiny_tpcd_db):
    from repro.analysis.verify import (catalog_stats_from_kernel,
                                       verify_program)
    text = QUERIES[2].texts()[0]
    _resolved, plain = tiny_tpcd_db.compile(text)
    with use(Optimizer(eliminate_dead=True)):
        _resolved, shrunk = tiny_tpcd_db.compile(text)
    assert len(shrunk.program) < len(plain.program)
    stats = catalog_stats_from_kernel(tiny_tpcd_db.kernel)
    plan = verify_program(shrunk.program, catalog=stats)
    assert plan.findings == []
