"""Property-based verifier fuzzing: accept = execute, reject = raise.

Hypothesis generates random *valid* MIL plans over a small typed
catalog (the plan-building pattern of
``tests/monet/test_query_fuzz.py``), then corrupts them three ways:

* **ref rename** — point an argument at a name nothing defines,
* **instruction reorder** — move a statement ahead of a definition it
  consumes,
* **type swap** — substitute an operand of a different (varsized vs
  fixed) type.

The property under test is *agreement*: for every generated plan —
pristine or corrupted — the verifier rejects it **iff** the
interpreter raises on it.  Pristine plans therefore cannot be
falsely rejected, and the corruptions (all statically certain
failures) cannot be falsely accepted.  The same agreement direction
that matters for the server (reject ⇒ raise) is also asserted for
every TPC-D plan in ``test_verifier.py``.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.errors import ReproError
from repro.monet import MILProgram, MonetKernel, Var
from repro.monet import bat_from_columns_values
from repro.monet.mil import MILInterpreter
from repro.analysis.verify import (catalog_stats_from_kernel,
                                   verify_program)

SETTINGS = dict(max_examples=40, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])

#: catalog names by "kind" — plans are built to be type-correct, so
#: every corruption is a deliberate, measurable deviation
INT_BATS = ("Fuzz_qty", "Fuzz_price")
KEYED_BATS = ("Fuzz_rates",)
STR_BATS = ("Fuzz_names",)


def _kernel():
    kernel = MonetKernel()
    kernel.register("Fuzz_qty", bat_from_columns_values(
        "oid", list(range(7)), "int", [4, 2, 7, 2, 9, 1, 5]))
    kernel.register("Fuzz_price", bat_from_columns_values(
        "oid", list(range(5)), "int", [2, 4, 4, 1, 7]))
    kernel.register("Fuzz_rates", bat_from_columns_values(
        "int", [1, 2, 4, 5, 7, 9], "int", [10, 20, 40, 50, 70, 90]))
    kernel.register("Fuzz_names", bat_from_columns_values(
        "oid", list(range(4)), "string", ["a", "b", "bb", "c"]))
    return kernel


KERNEL = _kernel()
STATS = catalog_stats_from_kernel(KERNEL)

#: step kinds a generated plan may chain; each consumes an (oid,int)
#: BAT and produces another, so any step can feed any later step
STEP_KINDS = ("select", "mirror_mirror", "join_rates", "unique",
              "slice", "union_self", "difference_self")


def _emit_step(program, kind, source, lo, hi):
    if kind == "select":
        return program.emit("select", [source, min(lo, hi),
                                       max(lo, hi)])
    if kind == "mirror_mirror":
        flipped = program.emit("mirror", [source])
        return program.emit("mirror", [flipped])
    if kind == "join_rates":
        return program.emit("join", [source, Var("Fuzz_rates")])
    if kind == "unique":
        return program.emit("unique", [source])
    if kind == "slice":
        return program.emit("slice", [source, 0, max(lo, hi)])
    if kind == "union_self":
        return program.emit("union", [source, source])
    return program.emit("difference", [source, source])


def _build_plan(base, steps):
    """A pristine, type-correct plan: base BAT through ``steps``."""
    program = MILProgram()
    source = Var(base)
    for kind, lo, hi in steps:
        source = _emit_step(program, kind, source, lo, hi)
    program.emit("aggr_all", [source], fn="count", target="out")
    return program


def _executes(program):
    try:
        MILInterpreter(KERNEL).run(program)
        return True
    except ReproError:
        return False


def _accepts(program):
    return verify_program(program, catalog=STATS).ok


def _assert_agreement(program):
    accepted = _accepts(program)
    executed = _executes(program)
    assert accepted == executed, \
        "verifier %s but interpreter %s:\n%s" % (
            "accepted" if accepted else "rejected",
            "succeeded" if executed else "raised",
            "\n".join(stmt.render() for stmt in program))


steps_strategy = st.lists(
    st.tuples(st.sampled_from(STEP_KINDS),
              st.integers(min_value=0, max_value=9),
              st.integers(min_value=0, max_value=9)),
    min_size=1, max_size=5)


@given(st.sampled_from(INT_BATS), steps_strategy)
@settings(**SETTINGS)
def test_pristine_plans_are_never_falsely_rejected(base, steps):
    program = _build_plan(base, steps)
    assert _accepts(program), \
        "\n".join(f.render() for f in
                  verify_program(program, catalog=STATS).findings)
    assert _executes(program)


@given(st.sampled_from(INT_BATS), steps_strategy, st.data())
@settings(**SETTINGS)
def test_ref_rename_agreement(base, steps, data):
    program = _build_plan(base, steps)
    stmt = data.draw(st.sampled_from(program.stmts))
    positions = [i for i, arg in enumerate(stmt.args)
                 if isinstance(arg, Var)]
    stmt.args[data.draw(st.sampled_from(positions))] = \
        Var("fuzz_undefined_name")
    _assert_agreement(program)


@given(st.sampled_from(INT_BATS), steps_strategy, st.data())
@settings(**SETTINGS)
def test_instruction_reorder_agreement(base, steps, data):
    program = _build_plan(base, steps)
    stmts = program.stmts
    src = data.draw(st.integers(min_value=0,
                                max_value=len(stmts) - 1))
    dst = data.draw(st.integers(min_value=0,
                                max_value=len(stmts) - 1))
    stmts.insert(dst, stmts.pop(src))
    _assert_agreement(program)


@given(st.sampled_from(INT_BATS), steps_strategy, st.data())
@settings(**SETTINGS)
def test_type_swap_agreement(base, steps, data):
    program = _build_plan(base, steps)
    stmt = data.draw(st.sampled_from(program.stmts))
    positions = [i for i, arg in enumerate(stmt.args)
                 if isinstance(arg, Var)]
    swapped = data.draw(st.sampled_from(STR_BATS + KEYED_BATS))
    stmt.args[data.draw(st.sampled_from(positions))] = Var(swapped)
    _assert_agreement(program)


def test_corrupted_plans_are_actually_rejected_sometimes():
    """Guard against a vacuous agreement property: the canonical
    corruption really is rejected (typed) and really does raise."""
    program = _build_plan("Fuzz_qty", [("join_rates", 0, 0)])
    program.stmts[0].args[0] = Var("Fuzz_names")   # string tail
    assert not _accepts(program)
    assert not _executes(program)
    with pytest.raises(ReproError):
        verify_program(program, catalog=STATS).raise_for_errors()
