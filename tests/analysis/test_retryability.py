"""The error taxonomy's retry policy is total, inherited, and sane.

Every exception class :mod:`repro.errors` defines must carry a
``RETRYABLE`` classification (the selfcheck lints the source for
this; here the same invariant is asserted at runtime so it also holds
for dynamically created subclasses), ``is_retryable`` must resolve
instances, classes, and unclassified subclasses through the MRO, and
the handful of policy-critical classifications are pinned explicitly
so a careless flip shows up as a named failure, not a count change.
"""

import inspect

import pytest

from repro import errors
from repro.errors import (CatalogChangedError, CatalogLockTimeout,
                          ConnectionLostError, CostModelError,
                          MILError, MOAError, MonetError,
                          PlanBudgetExceededError,
                          PlanVerificationError, QueryTimeoutError,
                          QuotaExceededError, ReproError,
                          RETRYABLE, ServerOverloadedError,
                          StaleCatalogError, TPCDError,
                          WorkerCrashedError, is_retryable)


def _error_classes():
    return [cls for _name, cls in
            inspect.getmembers(errors, inspect.isclass)
            if issubclass(cls, Exception)
            and cls.__module__ == "repro.errors"]


def test_every_error_class_is_classified():
    missing = [cls.__name__ for cls in _error_classes()
               if cls.__name__ not in RETRYABLE]
    assert missing == []


def test_every_classification_names_a_real_class():
    stale = [name for name in RETRYABLE
             if not hasattr(errors, name)]
    assert stale == []


def test_is_retryable_accepts_classes_and_instances():
    assert is_retryable(ConnectionLostError) is True
    assert is_retryable(ConnectionLostError("gone")) is True
    assert is_retryable(MILError("bad plan")) is False


def test_unclassified_subclass_inherits_from_its_parent():
    class FlakyPool(ServerOverloadedError):
        pass

    class BrokenPlan(PlanVerificationError):
        pass

    assert is_retryable(FlakyPool("full")) is True
    assert is_retryable(BrokenPlan("typo")) is False
    assert is_retryable(ValueError("outside the taxonomy")) is False


#: the classifications client/server behaviour actually depends on:
#: transient capacity/transport conditions retry, everything a resend
#: cannot fix does not
PINNED = [
    (ConnectionLostError, True),
    (ServerOverloadedError, True),
    (QuotaExceededError, True),
    (WorkerCrashedError, True),
    (CatalogLockTimeout, True),
    (StaleCatalogError, True),
    (CatalogChangedError, True),
    (ReproError, False),
    (MonetError, False),
    (MOAError, False),
    (TPCDError, False),
    (CostModelError, False),
    (QueryTimeoutError, False),
    (PlanVerificationError, False),
    (PlanBudgetExceededError, False),
]


@pytest.mark.parametrize("cls,expected",
                         PINNED, ids=[c.__name__ for c, _ in PINNED])
def test_pinned_classifications(cls, expected):
    assert RETRYABLE[cls.__name__] is expected
    assert is_retryable(cls("x")) is expected
