"""The project-invariant linter, against this repo and synthetic trees.

The positive test is the CI gate itself: the real tree must come back
finding-free.  The negative tests build miniature repository trees in
``tmp_path`` that each violate exactly one invariant and assert the
matching finding code — so a regression in any single check cannot
hide behind the others.
"""

import os
import textwrap

from repro.analysis import selfcheck


def test_repository_tree_is_clean():
    findings = selfcheck.run_selfcheck()
    assert findings == [], \
        "\n".join(f.render() for f in findings)


def test_repo_root_locates_the_tree():
    root = selfcheck.repo_root()
    assert os.path.isfile(os.path.join(root, "src", "repro",
                                       "errors.py"))


# ----------------------------------------------------------------------
# synthetic violating trees
# ----------------------------------------------------------------------
ERRORS_STUB = '''
class GoodError(Exception):
    pass

RETRYABLE = {"GoodError": False}
'''


def _tree(tmp_path, src_files=(), test_files=(), errors=ERRORS_STUB):
    (tmp_path / "src" / "repro").mkdir(parents=True)
    (tmp_path / "tests" / "chaos").mkdir(parents=True)
    (tmp_path / "src" / "repro" / "errors.py").write_text(
        textwrap.dedent(errors))
    for name, body in src_files:
        (tmp_path / "src" / name).write_text(textwrap.dedent(body))
    for name, body in test_files:
        (tmp_path / "tests" / name).write_text(textwrap.dedent(body))
    return str(tmp_path)


def _codes(tmp_path):
    return sorted(set(
        f.code for f in selfcheck.run_selfcheck(str(tmp_path))))


def test_clean_synthetic_tree(tmp_path):
    _tree(tmp_path,
          test_files=[("test_ok.py", "from x import GoodError\n")])
    assert _codes(tmp_path) == []


def test_unarmed_fault_point_is_found(tmp_path):
    _tree(tmp_path,
          src_files=[("svc.py",
                      'import faults\n'
                      'faults.declare("svc.crash", "svc.armed")\n')],
          test_files=[("test_ok.py", "from x import GoodError\n"),
                      (os.path.join("chaos", "test_arm.py"),
                       'POINT = "svc.armed"\n')])
    assert "unarmed-fault-point" in _codes(tmp_path)
    findings = selfcheck.run_selfcheck(str(tmp_path))
    assert any("svc.crash" in f.message for f in findings)
    assert not any("svc.armed" in f.message for f in findings)


def test_unclassified_and_untested_errors_are_found(tmp_path):
    _tree(tmp_path, errors='''
        class GoodError(Exception):
            pass

        class LonelyError(Exception):
            pass

        RETRYABLE = {"GoodError": False}
        ''',
          test_files=[("test_ok.py", "from x import GoodError\n")])
    codes = _codes(tmp_path)
    assert "unclassified-error" in codes
    assert "untested-error" in codes


def test_bare_except_is_found(tmp_path):
    _tree(tmp_path,
          src_files=[("oops.py",
                      "try:\n    pass\nexcept:\n    pass\n")],
          test_files=[("test_ok.py", "from x import GoodError\n")])
    assert "bare-except" in _codes(tmp_path)


def test_unsynced_tmp_rename_is_found(tmp_path):
    bad = '''
        import os

        def publish(path, data):
            with open(path + ".tmp", "w") as handle:
                handle.write(data)
            os.replace(path + ".tmp", path)
        '''
    good = '''
        import os

        def publish(path, data):
            with open(path + ".tmp", "w") as handle:
                handle.write(data)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(path + ".tmp", path)
        '''
    _tree(tmp_path, src_files=[("bad.py", bad)],
          test_files=[("test_ok.py", "from x import GoodError\n")])
    assert "unsynced-rename" in _codes(tmp_path)

    _tree(tmp_path / "clean", src_files=[("good.py", good)],
          test_files=[("test_ok.py", "from x import GoodError\n")])
    assert _codes(tmp_path / "clean") == []
