"""The operator-signature registry: complete, and concretely honest.

Two families of assertions:

* **registry shape** — one signature per interpreter op (asserted both
  ways against ``mil._OPS``), arity checking, and the targeted
  rejection rules the verifier leans on;
* **abstract/concrete agreement** — for a real plan over real BATs,
  the abstract result types the signatures derive must match the atoms
  the kernel actually produces, and every static cardinality bound
  must dominate the observed count.  This is the property that makes
  the verifier sound for acceptance.
"""

import pytest

from repro.errors import PlanVerificationError
from repro.monet import MILProgram, MonetKernel, Var
from repro.monet import bat_from_columns_values
from repro.monet.mil import _OPS, MILInterpreter
from repro.analysis.signatures import (ANY, BatType, ScalarType,
                                       SignatureError, SIGNATURES,
                                       signature_for)
from repro.analysis.verify import (catalog_stats_from_kernel,
                                   verify_program)


def test_registry_covers_every_interpreter_op_exactly():
    assert set(SIGNATURES) == set(_OPS), \
        "signature registry and mil._OPS must list the same operators"


def test_signature_for_unknown_op_raises():
    with pytest.raises(KeyError):
        signature_for("frobnicate")


@pytest.mark.parametrize("op", sorted(_OPS))
def test_wrong_arity_is_rejected(op):
    signature = signature_for(op)
    if signature.arities is None:        # variadic: rule checks shape
        stmt = _stmt(op)
        with pytest.raises(SignatureError):
            signature.check(stmt, [])
        return
    bad = max(signature.arities) + 3
    stmt = _stmt(op)
    with pytest.raises(SignatureError):
        signature.check(stmt, [ANY] * bad)


def _stmt(op, args=()):
    program = MILProgram()
    return program.emit(op, list(args)) and program.stmts[-1]


def _check(op, args, fn=None):
    program = MILProgram()
    program.emit(op, [Var("x%d" % i) for i in range(len(args))],
                 **({"fn": fn} if fn else {}))
    return signature_for(op).check(program.stmts[-1], list(args))


INT_BAT = BatType("oid", "int", 10, count_exact=True)
STR_BAT = BatType("oid", "string", 10, count_exact=True)
STR_KEYED = BatType("string", "int", 4, count_exact=True)
INT_KEYED = BatType("int", "int", 4, count_exact=True)


def test_join_rejects_varsized_tail_head_mismatch():
    with pytest.raises(SignatureError, match="join"):
        _check("join", [STR_BAT, INT_KEYED])


def test_join_accepts_and_types_the_result():
    out = _check("join", [INT_BAT, INT_KEYED])
    assert (out.head, out.tail) == ("oid", "int")
    assert out.count == 10 * 4


def test_select_point_rejects_nil_and_uncoercible_literals():
    with pytest.raises(SignatureError):
        _check("select", [INT_BAT, None])
    with pytest.raises(SignatureError):
        _check("select", [INT_BAT, "not-an-int"])
    # open range bounds are legal: None means unbounded
    out = _check("select", [INT_BAT, None, 5])
    assert out.count == 10 and not out.count_exact


def test_aggr_sum_requires_a_summable_tail():
    with pytest.raises(SignatureError, match="sum"):
        _check("aggr", [STR_BAT], fn="sum")
    out = _check("aggr", [INT_BAT], fn="sum")
    assert out.tail == "long" and out.hkey is True


def test_union_requires_identical_atoms():
    with pytest.raises(SignatureError):
        _check("union", [INT_BAT, STR_BAT])
    out = _check("union", [INT_BAT, INT_BAT])
    assert out.count == 20


def test_multiplex_rejects_unknown_function_and_bad_operands():
    with pytest.raises(SignatureError):
        _check("multiplex", [INT_BAT], fn="no_such_fn")
    with pytest.raises(SignatureError):
        _check("multiplex", [1, 2], fn="+")
    out = _check("multiplex", [INT_BAT, INT_BAT], fn="+")
    assert out.head == "oid"


# ----------------------------------------------------------------------
# abstract/concrete agreement on a real plan
# ----------------------------------------------------------------------
def _fuzz_kernel():
    kernel = MonetKernel()
    kernel.register("Sig_nums", bat_from_columns_values(
        "oid", list(range(8)), "int", [3, 1, 4, 1, 5, 9, 2, 6]))
    kernel.register("Sig_prices", bat_from_columns_values(
        "int", [3, 1, 4, 1, 5], "double",
        [0.5, 1.5, 2.5, 3.5, 4.5]))
    kernel.register("Sig_names", bat_from_columns_values(
        "oid", [0, 1, 2], "string", ["x", "y", "z"]))
    return kernel


def test_abstract_types_match_concrete_execution():
    kernel = _fuzz_kernel()
    program = MILProgram()
    selected = program.emit("select", [Var("Sig_nums"), 1, 5])
    joined = program.emit("join", [selected, Var("Sig_prices")])
    marked = program.emit("mark", [joined, 0])
    program.emit("aggr_all", [joined], fn="sum", target="total")

    plan = verify_program(program,
                          catalog=catalog_stats_from_kernel(kernel))
    assert plan.ok and not plan.warnings

    interpreter = MILInterpreter(kernel)
    interpreter.run(program)
    for stmt, (rows, _bytes) in zip(program, plan.stmt_bounds):
        value = interpreter.value(stmt.target)
        abstract = plan.var_types[stmt.target]
        if isinstance(abstract, ScalarType):
            continue
        # "void" is the storage name for a dense oid column: the
        # kernel's in-memory atom for it is OID
        canon = lambda a: "oid" if a == "void" else a
        assert canon(abstract.head) == value.head.atom.name
        assert canon(abstract.tail) == value.tail.atom.name
        assert rows is None or rows >= len(value), \
            "static bound must dominate the observed cardinality"


def test_verify_rejection_predicts_runtime_failure():
    kernel = _fuzz_kernel()
    program = MILProgram()
    # string/int varsized mismatch: statically certain to fail
    program.emit("join", [Var("Sig_names"), Var("Sig_prices")])
    plan = verify_program(program,
                          catalog=catalog_stats_from_kernel(kernel))
    assert not plan.ok
    with pytest.raises(PlanVerificationError):
        plan.raise_for_errors()
    with pytest.raises(Exception):
        MILInterpreter(kernel).run(program)
