"""The plan verifier: def-use, hazards, budgets, catalog stats.

The acceptance contract of this suite:

* every plan the Moa rewriter emits for the TPC-D queries verifies
  with **zero findings** — not even warnings;
* the def-use analysis reproduces exactly the reference-resolution
  behaviour of ``MILInterpreter.resolve`` (env first, catalog second);
* the write-after-read hazard the partitioner assumes away is a typed
  rejection, making ``partition_independent``'s read-only-catalog
  assumption an enforced invariant;
* budget violations raise :class:`~repro.errors.
  PlanBudgetExceededError`, everything else :class:`~repro.errors.
  PlanVerificationError`, and manifest-derived stats agree with
  kernel-derived ones so the server can verify from metadata alone.
"""

import pytest

from repro.errors import (MILError, PlanBudgetExceededError,
                          PlanVerificationError)
from repro.monet import MILProgram, MonetKernel, Var
from repro.monet import bat_from_columns_values
from repro.monet.storage import as_backend
from repro.analysis.verify import (PlanBudget, catalog_stats_from_kernel,
                                   catalog_stats_from_manifest,
                                   check_program, live_statements,
                                   verify_program)
from repro.tpcd import QUERIES, load_tpcd


@pytest.fixture(scope="module")
def kernel():
    k = MonetKernel()
    k.register("Ver_nums", bat_from_columns_values(
        "oid", list(range(6)), "int", [5, 3, 8, 1, 9, 2]))
    k.register("Ver_names", bat_from_columns_values(
        "oid", list(range(3)), "string", ["a", "b", "c"]))
    return k


@pytest.fixture(scope="module")
def stats(kernel):
    return catalog_stats_from_kernel(kernel)


def _codes(plan):
    return [finding.code for finding in plan.findings]


# ----------------------------------------------------------------------
# def-use
# ----------------------------------------------------------------------
def test_undefined_ref_is_an_error(stats):
    program = MILProgram()
    program.emit("mirror", [Var("no_such_bat")])
    plan = verify_program(program, catalog=stats)
    assert _codes(plan) == ["undefined-ref"]
    with pytest.raises(PlanVerificationError) as excinfo:
        plan.raise_for_errors()
    assert excinfo.value.findings == plan.errors


def test_use_before_def_is_distinguished(stats):
    program = MILProgram()
    program.emit("mirror", [Var("late")])
    program.emit("ident", [Var("Ver_nums")], target="late")
    plan = verify_program(program, catalog=stats)
    assert "use-before-def" in _codes(plan)


def test_without_catalog_unresolved_names_pass(kernel):
    program = MILProgram()
    program.emit("mirror", [Var("anything_goes")])
    assert verify_program(program, catalog=None).ok


def test_interpreter_agrees_on_undefined_refs(kernel, stats):
    program = MILProgram()
    program.emit("mirror", [Var("no_such_bat")])
    assert not verify_program(program, catalog=stats).ok
    from repro.monet.mil import MILInterpreter
    with pytest.raises(MILError):
        MILInterpreter(kernel).run(program)


# ----------------------------------------------------------------------
# hazards and liveness
# ----------------------------------------------------------------------
def test_war_hazard_on_catalog_bat_is_rejected(stats):
    program = MILProgram()
    program.emit("mirror", [Var("Ver_nums")])
    program.emit("ident", [Var("Ver_names")], target="Ver_nums")
    plan = verify_program(program, catalog=stats)
    assert "war-hazard" in _codes(plan)
    assert not plan.ok


def test_shadowing_without_prior_read_is_only_a_warning(stats):
    program = MILProgram()
    program.emit("mirror", [Var("Ver_names")], target="Ver_nums")
    plan = verify_program(program, catalog=stats)
    assert _codes(plan) == ["shadows-catalog"]
    assert plan.ok                       # warnings never reject


def test_dead_statement_warning_and_liveness(stats):
    program = MILProgram()
    kept = program.emit("mirror", [Var("Ver_nums")])
    program.emit("mirror", [Var("Ver_names")])      # dead under roots
    plan = verify_program(program, catalog=stats,
                          roots={kept.name})
    assert _codes(plan) == ["dead-instruction"]
    assert plan.ok
    assert live_statements(program, roots={kept.name}) == [0]
    assert live_statements(program) == [0, 1]


# ----------------------------------------------------------------------
# budgets
# ----------------------------------------------------------------------
def test_budget_rows_bytes_pages_each_reject(stats):
    program = MILProgram()
    program.emit("mirror", [Var("Ver_nums")])       # 6 rows, 72 bytes
    for budget in (PlanBudget(max_rows=5), PlanBudget(max_bytes=71),
                   PlanBudget(max_pages=0)):
        with pytest.raises(PlanBudgetExceededError):
            check_program(program, catalog=stats, budget=budget)
    assert check_program(program, catalog=stats,
                         budget=PlanBudget(max_rows=6)).ok


def test_underivable_bound_with_budget_is_conservative(stats):
    program = MILProgram()
    program.emit("mirror", [Var("mystery")])
    # no catalog: bounds underivable; with a budget that must reject
    plan = verify_program(program, catalog=None,
                          budget=PlanBudget(max_rows=100))
    assert [f.code for f in plan.errors] == ["budget"]
    with pytest.raises(PlanBudgetExceededError):
        plan.raise_for_errors()
    # without a budget the same plan is fine
    assert verify_program(program, catalog=None).ok


def test_budget_error_is_a_verification_error_subclass():
    assert issubclass(PlanBudgetExceededError, PlanVerificationError)
    assert issubclass(PlanVerificationError, MILError)


# ----------------------------------------------------------------------
# catalog stats: kernel and manifest derivations agree
# ----------------------------------------------------------------------
def test_manifest_stats_match_kernel_stats(tiny_tpcd, tmp_path):
    db_dir = tmp_path / "db"
    db, _report = load_tpcd(tiny_tpcd, db_dir=db_dir)
    from_kernel = catalog_stats_from_kernel(db.kernel)
    manifest = as_backend(db_dir).read_manifest()
    from_manifest = catalog_stats_from_manifest(manifest)
    assert set(from_kernel) == set(from_manifest)
    for name, expected in from_kernel.items():
        got = from_manifest[name]
        assert (got.head, got.tail) == (expected.head, expected.tail), \
            name
        assert got.count == expected.count, name
        assert (got.hkey, got.tkey, got.hordered, got.tordered) == \
            (expected.hkey, expected.tkey, expected.hordered,
             expected.tordered), name


# ----------------------------------------------------------------------
# the acceptance bar: every TPC-D plan verifies finding-free
# ----------------------------------------------------------------------
def test_every_tpcd_plan_verifies_clean(tiny_tpcd_db):
    stats = catalog_stats_from_kernel(tiny_tpcd_db.kernel)
    checked = 0
    for number in sorted(QUERIES):
        for phase, text in enumerate(QUERIES[number].texts()):
            _resolved, result = tiny_tpcd_db.compile(text)
            plan = verify_program(result.program, catalog=stats)
            assert plan.findings == [], \
                "Q%d phase %d: %s" % (number, phase,
                                      [f.render()
                                       for f in plan.findings])
            assert plan.max_rows is not None \
                and plan.total_bytes is not None \
                and plan.total_pages is not None, \
                "Q%d phase %d: bounds must be derivable" \
                % (number, phase)
            checked += 1
    assert checked >= 15
