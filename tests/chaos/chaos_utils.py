"""Shared helpers for the chaos suite (imported by its test modules).

Every chaos test runs the same differential contract as the rest of
the suite: after (or despite) an injected fault, a surviving query
answer must be sha1-identical to serial execution of the same query
against the same catalog generation — a fault may cost an operation
(typed error) or a process (crash + recovery), never an answer.
"""

import multiprocessing

from repro.monet.multiproc import result_checksum, ship_value
from repro.tpcd import QUERIES, open_tpcd

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()

#: Queries the per-point differential checks replay — a spread of
#: scan/aggregate (Q1, Q6) and join/order (Q12) shapes.  The full
#: 15-query set runs in the tier-1 server suite; per injection point
#: three shapes keep the sweep's runtime linear in the point count.
SWEEP_QUERIES = (1, 6, 12)


def assert_catalog_intact(db_dir, serial_checksums,
                          queries=SWEEP_QUERIES):
    """Reopen ``db_dir`` and verify the differential contract.

    Returns the generation served.  Asserts that after the reader's
    recovery sweep the directory holds exactly the manifest's files
    (no ``.tmp`` staging litter, no orphaned heap files from a
    crashed save) and that every sweep query still matches the
    serial reference checksums.
    """
    from repro.monet.storage import _manifest_files, as_backend

    db, _report = open_tpcd(db_dir)
    generation = db.kernel.generation
    manifest = as_backend(db_dir).read_manifest()
    expected = set(_manifest_files(manifest)) | {
        "catalog.json", "catalog.lock"}
    on_disk = {path.name for path in db_dir.iterdir()}
    assert not [name for name in on_disk if name.endswith(".tmp")], \
        "staging litter survived the recovery sweep: %s" % (
            sorted(on_disk),)
    assert on_disk <= expected, \
        "orphaned files survived the recovery sweep: %s" % (
            sorted(on_disk - expected),)
    for number in queries:
        checksum = result_checksum(ship_value(QUERIES[number].run(db)))
        assert checksum == serial_checksums[number], \
            "Q%d diverged from the serial reference at generation " \
            "%s" % (number, generation)
    return generation
