"""Chaos fixtures: a saved tiny TPC-D catalog + the serial oracle."""

import pytest

from repro.monet.multiproc import result_checksum, ship_value
from repro.tpcd import QUERIES, load_tpcd, open_tpcd


@pytest.fixture(scope="module")
def db_dir(tiny_tpcd, tmp_path_factory):
    path = tmp_path_factory.mktemp("chaosdb") / "db"
    load_tpcd(tiny_tpcd, db_dir=path)
    return path


@pytest.fixture(scope="module")
def serial_checksums(db_dir):
    db, _report = open_tpcd(db_dir)
    return {number: result_checksum(ship_value(QUERIES[number].run(db)))
            for number in sorted(QUERIES)}
