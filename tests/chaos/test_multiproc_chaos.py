"""Worker-fault sweep: kill/fail/stall workers at every task point.

The dispatcher's contract under injected worker faults: a fault may
cost the in-flight task a **typed** error (``WorkerCrashedError``,
``InjectedFaultError``, ``QueryTimeoutError``) and the worker its
process (the pool respawns it), but every result that does come back
is checksum-identical to serial execution, and the pool keeps
serving afterwards.

Fault plans ship to workers pickled with their hit counters reset,
so a ``times=1`` spec fires once *per worker process* — a respawned
worker re-arms.  The tests use ``skip`` to carve out deterministic
schedules (e.g. crash the second task of each worker, so a resubmit
landing on a fresh worker survives).
"""

import pytest

from repro import faults
from repro.errors import (InjectedFaultError, QueryTimeoutError,
                          WorkerCrashedError)
from repro.monet.multiproc import MultiprocExecutor

from chaos_utils import HAVE_FORK

pytestmark = pytest.mark.skipif(
    not HAVE_FORK, reason="worker pools fork; spawn is too slow")

MULTIPROC_POINTS = ("multiproc.task.start", "multiproc.task.mid",
                    "multiproc.task.post_result")


def test_sweep_covers_every_declared_multiproc_point():
    assert tuple(faults.registered_points("multiproc.")) == \
        tuple(sorted(MULTIPROC_POINTS))


@pytest.mark.parametrize("point",
                         ["multiproc.task.start",
                          "multiproc.task.mid"])
def test_worker_crash_at_point_is_typed_and_recoverable(
        db_dir, serial_checksums, point):
    plan = faults.FaultPlan().arm(point, action="crash", skip=1)
    with MultiprocExecutor(db_dir, procs=1, fault_plan=plan) as pool:
        first = pool.run_queries((6,))[6]          # hit 1: skipped
        assert first.checksum == serial_checksums[6]
        with pytest.raises(WorkerCrashedError):    # hit 2: crash
            pool.submit(("query", "q2", 12, None)).result(timeout=120)
        assert pool.crashes == 1
        # the respawned worker re-arms with skip=1, so the resubmit
        # (its hit 1) goes through — and matches the serial oracle
        retry = pool.run_queries((12,))[12]
        assert retry.checksum == serial_checksums[12]
        assert pool.respawns >= 1


def test_worker_crash_after_reply_never_loses_the_result(
        db_dir, serial_checksums):
    # post_result fires after conn.send: the reply to *this* task is
    # already on the pipe when the worker dies, so the first submit
    # always answers.  A follow-up task can race into the dying
    # worker's buffer before the parent notices the death — at-most-
    # once semantics make that a typed WorkerCrashedError, never a
    # wrong answer or a hang — and a resubmit recovers.
    plan = faults.FaultPlan().arm("multiproc.task.post_result",
                                  action="crash", times=None)
    with MultiprocExecutor(db_dir, procs=1, fault_plan=plan) as pool:
        first = pool.submit(("query", "q1", 1, None)).result(
            timeout=120)
        assert first.checksum == serial_checksums[1]
        pids = {first.pid}
        for number in (6, 12):
            for attempt in range(10):
                try:
                    outcome = pool.submit(
                        ("query", "q%d.%d" % (number, attempt),
                         number, None)).result(timeout=120)
                except WorkerCrashedError:
                    continue           # raced a dying worker: retry
                break
            assert outcome.checksum == serial_checksums[number]
            pids.add(outcome.pid)
        # every answered task came from a fresh worker (its
        # predecessor died right after replying)
        assert len(pids) == 3
        assert pool.respawns >= 2


def test_worker_raise_at_point_is_typed_and_worker_survives(
        db_dir, serial_checksums):
    plan = faults.FaultPlan().arm("multiproc.task.start",
                                  action="raise", skip=1)
    with MultiprocExecutor(db_dir, procs=1, fault_plan=plan) as pool:
        pool.run_queries((6,))                     # hit 1: skipped
        [pid] = pool.worker_pids()
        with pytest.raises(InjectedFaultError):    # hit 2: raises
            pool.submit(("query", "qf", 12, None)).result(timeout=120)
        # a raised fault is an ordinary failing task: same worker,
        # no crash, no respawn
        assert pool.worker_pids() == [pid]
        assert pool.crashes == 0
        retry = pool.run_queries((12,))[12]
        assert retry.checksum == serial_checksums[12]


def test_delayed_reply_past_timeout_is_a_typed_timeout(
        db_dir, serial_checksums):
    plan = faults.FaultPlan().arm("multiproc.task.mid",
                                  action="delay", delay_s=1.5)
    with MultiprocExecutor(db_dir, procs=1, fault_plan=plan) as pool:
        with pytest.raises(QueryTimeoutError):
            pool.submit(("query", "qslow", 6, None),
                        timeout=0.05).result(timeout=120)
        assert pool.timeouts == 1
        # the overdue worker was killed; its replacement re-arms the
        # 1.5s delay but an unbounded resubmit just waits it out
        outcome = pool.run_queries((6,))[6]
        assert outcome.checksum == serial_checksums[6]
