"""End-to-end resilience: faults on the wire and in the server.

A live :class:`QueryServer` on an ephemeral port, with faults
injected into the reply path, the worker pool, and the connection
lifecycle.  The contract throughout: a client request either returns
a checksum-verified result (possibly after transparent retries) or
raises a **typed** exception — never a wrong answer, a silent hang,
or an undecodable torn stream.
"""

import socket
import struct
import threading
import time

import pytest

from repro import faults
from repro.errors import (AuthError, ConnectionLostError,
                          FrameTooLargeError, InjectedFaultError,
                          ProtocolError, QuotaExceededError,
                          RetriesExhaustedError, ServerDrainingError,
                          ServerOverloadedError)
from repro.server import (MAX_FRAME_BYTES, QueryClient, QueryServer,
                          QueryService, recv_frame, send_frame)

from chaos_utils import HAVE_FORK

pytestmark = pytest.mark.skipif(
    not HAVE_FORK, reason="server tests fork worker pools")


def _client(server, **kwargs):
    host, port = server.address
    return QueryClient(host, port, **kwargs)


@pytest.fixture(scope="module")
def server(db_dir):
    service = QueryService(db_dir, procs=1)
    with QueryServer(service) as srv:
        yield srv
    service.close()


def test_chaos_suite_covers_every_declared_point():
    """Every declared injection point is swept somewhere in this
    suite; instrumenting a new site fails here until covered."""
    covered = {
        # tests/chaos/test_storage_chaos.py
        "storage.save.begin", "storage.save.heaps_written",
        "storage.save.manifest_written", "storage.write_array.torn",
        "storage.write_array.staged", "storage.write_array.synced",
        "storage.write_array.renamed", "storage.manifest.torn",
        "storage.manifest.staged", "storage.manifest.synced",
        "storage.manifest.renamed",
        # tests/chaos/test_multiproc_chaos.py
        "multiproc.task.start", "multiproc.task.mid",
        "multiproc.task.post_result",
        # this module
        "protocol.send.reset", "protocol.send.torn",
        "protocol.recv.delay", "server.handle.delay",
        "server.reply.drop", "server.reply.reset",
    }
    assert set(faults.registered_points()) == covered


# ----------------------------------------------------------------------
# wire-level faults (socketpair: no server needed)
# ----------------------------------------------------------------------
def test_send_reset_fires_before_any_bytes():
    left, right = socket.socketpair()
    try:
        with faults.use(faults.FaultPlan().arm("protocol.send.reset")):
            with pytest.raises(InjectedFaultError):
                send_frame(left, {"type": "ping"})
        left.close()
        assert recv_frame(right) is None     # clean EOF: no bytes sent
    finally:
        right.close()


def test_torn_frame_is_detected_not_decoded():
    left, right = socket.socketpair()
    try:
        plan = faults.FaultPlan().arm("protocol.send.torn",
                                      action="tear", fraction=0.5)
        with faults.use(plan):
            with pytest.raises(InjectedFaultError):
                send_frame(left, {"type": "result",
                                  "payload": list(range(64))})
        left.close()
        # the receiver sees a mid-frame truncation, typed — it can
        # never mistake half a frame for a whole one
        with pytest.raises(ProtocolError):
            recv_frame(right)
    finally:
        right.close()


def test_recv_delay_stalls_the_receive_path():
    left, right = socket.socketpair()
    try:
        send_frame(left, {"type": "pong"})
        plan = faults.FaultPlan().arm("protocol.recv.delay",
                                      action="delay", delay_s=0.2)
        with faults.use(plan):
            started = time.monotonic()
            assert recv_frame(right) == {"type": "pong"}
            assert time.monotonic() - started >= 0.2
    finally:
        left.close()
        right.close()


def test_oversize_frame_answered_with_typed_error(server):
    host, port = server.address
    sock = socket.create_connection((host, port), timeout=10.0)
    try:
        hello = recv_frame(sock)
        assert hello["type"] == "hello"
        # announce a frame just past the cap; the body never follows
        sock.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
        reply = recv_frame(sock)
        assert reply["type"] == "error"
        assert reply["error"] == "FrameTooLargeError"
        assert recv_frame(sock) is None      # then the server hangs up
    finally:
        sock.close()
    # and the QueryClient surface raises it typed
    with _client(server) as client:
        assert issubclass(FrameTooLargeError, ProtocolError)
        assert client.ping() == client.generation    # server healthy


def test_torn_binary_frame_is_detected_not_decoded():
    import numpy as np

    from repro.server import send_binary_frame
    left, right = socket.socketpair()
    try:
        plan = faults.FaultPlan().arm("protocol.send.torn",
                                      action="tear", fraction=0.5)
        with faults.use(plan):
            with pytest.raises(InjectedFaultError):
                send_binary_frame(left, {"type": "result",
                                         "payload":
                                             np.arange(4096)})
        left.close()
        # half a binary frame is as undecodable as half a JSON one
        with pytest.raises(ProtocolError):
            recv_frame(right)
    finally:
        right.close()


def test_oversize_binary_frame_answered_with_typed_error(server):
    from repro.server import protocol as proto
    host, port = server.address
    sock = socket.create_connection((host, port), timeout=10.0)
    try:
        hello = recv_frame(sock)
        assert "binary" in hello["wire_formats"]
        # an oversize announcement with the binary flag bit set is
        # refused before any allocation, same as the JSON path
        word = proto._BINARY_FLAG | (MAX_FRAME_BYTES + 1)
        sock.sendall(struct.pack(">I", word))
        reply = recv_frame(sock)
        assert reply["type"] == "error"
        assert reply["error"] == "FrameTooLargeError"
        assert recv_frame(sock) is None
    finally:
        sock.close()
    # a binary-negotiated client still round-trips fine afterwards
    with _client(server, wire="binary") as client:
        assert client.wire == "binary"
        assert client.ping() == client.generation


def test_binary_client_retries_through_reply_faults(
        server, serial_checksums):
    plan = faults.FaultPlan().arm("server.reply.reset", times=1)
    with faults.use(plan):
        with _client(server, wire="binary", retries=3,
                     backoff_base=0.01) as client:
            reply = client.tpcd(6)
            assert reply.checksum == serial_checksums[6]
            assert client.retries_used >= 1


# ----------------------------------------------------------------------
# client retry/backoff through reply-path faults
# ----------------------------------------------------------------------
def test_client_retries_through_dropped_reply(server, serial_checksums):
    plan = faults.FaultPlan().arm("server.reply.drop", times=1)
    client = _client(server, retries=2, backoff_base=0.01,
                     request_timeout=1.0)
    try:
        with faults.use(plan):
            reply = client.tpcd(6)
        assert reply.checksum == serial_checksums[6]
        assert plan.fired("server.reply.drop") == 1
        assert client.retries_used == 1
        assert client.reconnects == 1        # timeout => reconnect
    finally:
        client.close()


def test_client_retries_through_connection_reset(server,
                                                 serial_checksums):
    plan = faults.FaultPlan().arm("server.reply.reset", times=1)
    client = _client(server, retries=2, backoff_base=0.01)
    try:
        with faults.use(plan):
            reply = client.tpcd(12)
        assert reply.checksum == serial_checksums[12]
        assert client.reconnects == 1
    finally:
        client.close()


def test_retries_exhausted_is_typed_and_chains_the_cause(server):
    plan = faults.FaultPlan().arm("server.reply.reset", times=None)
    client = _client(server, retries=2, backoff_base=0.01)
    try:
        with faults.use(plan):
            with pytest.raises(RetriesExhaustedError) as info:
                client.tpcd(6)
        assert info.value.attempts == 3
        assert isinstance(info.value.__cause__, ConnectionLostError)
    finally:
        client.close()


def test_zero_retries_surfaces_the_underlying_error(server):
    plan = faults.FaultPlan().arm("server.reply.reset", times=1)
    client = _client(server)                 # retries=0: the default
    try:
        with faults.use(plan):
            with pytest.raises(ConnectionLostError) as info:
                client.tpcd(6)
        assert not isinstance(info.value, RetriesExhaustedError)
    finally:
        client.close()


# ----------------------------------------------------------------------
# quotas
# ----------------------------------------------------------------------
def test_quota_exceeded_is_typed_and_connection_survives(db_dir):
    service = QueryService(db_dir, procs=1)
    server = QueryServer(service, quota_rps=0.5, quota_burst=1)
    server.start()
    try:
        with _client(server) as client:
            client.tpcd(6)                   # burst token spent
            with pytest.raises(QuotaExceededError):
                client.tpcd(6)
            assert client.ping() == client.generation   # exempt
            assert isinstance(QuotaExceededError(""),
                              ServerOverloadedError)
            stats = client.stats()           # exempt too
        assert stats["counters"]["quota_rejections"] >= 1
    finally:
        server.stop()
        service.close()


def test_retrying_client_rides_out_the_quota(db_dir, serial_checksums):
    service = QueryService(db_dir, procs=1)
    server = QueryServer(service, quota_rps=5.0, quota_burst=1)
    server.start()
    try:
        client = _client(server, retries=8, backoff_base=0.1,
                         backoff_max=0.5)
        try:
            for number in (6, 6, 6):
                assert client.tpcd(number).checksum == \
                    serial_checksums[number]
            assert client.retries_used >= 1      # backoff did work
            assert client.reconnects == 0        # same connection
        finally:
            client.close()
    finally:
        server.stop()
        service.close()


# ----------------------------------------------------------------------
# auth
# ----------------------------------------------------------------------
def test_auth_token_gate(db_dir, serial_checksums):
    service = QueryService(db_dir, procs=1)
    server = QueryServer(service, auth_token="open-sesame")
    server.start()
    try:
        host, port = server.address
        with pytest.raises(AuthError):
            QueryClient(host, port)              # no token configured
        with pytest.raises(AuthError):
            QueryClient(host, port, auth_token="wrong")
        with QueryClient(host, port,
                         auth_token="open-sesame") as client:
            assert client.generation is not None
            assert client.tpcd(6).checksum == serial_checksums[6]
            stats = client.stats()
        # two failed handshakes: the token-less client hung up at the
        # challenge, the wrong-token client was refused
        assert stats["counters"]["auth_failures"] == 2
    finally:
        server.stop()
        service.close()


# ----------------------------------------------------------------------
# degraded mode: crash-retry in the service
# ----------------------------------------------------------------------
def test_service_resubmits_over_one_crash_transparently(
        db_dir, serial_checksums):
    # each worker crashes on its second task (skip=1): the client's
    # second request crashes its worker, the service resubmits to the
    # respawned one (hit 1: skipped) and the reply still verifies
    plan = faults.FaultPlan().arm("multiproc.task.start",
                                  action="crash", skip=1)
    service = QueryService(db_dir, procs=1, fault_plan=plan,
                           result_cache_bytes=0)
    server = QueryServer(service)
    server.start()
    try:
        with _client(server) as client:
            assert client.tpcd(1).checksum == serial_checksums[1]
            assert client.tpcd(6).checksum == serial_checksums[6]
            stats = client.stats()
        assert stats["counters"]["crash_retries"] >= 1
        assert stats["counters"]["errors"] == 0
    finally:
        server.stop()
        service.close()


def test_pool_stuck_respawning_degrades_typed(db_dir):
    # every task of every worker crashes: the resubmit budget runs
    # out and the service degrades to ServerOverloadedError
    plan = faults.FaultPlan().arm("multiproc.task.start",
                                  action="crash", times=None)
    service = QueryService(db_dir, procs=1, fault_plan=plan,
                           result_cache_bytes=0)
    server = QueryServer(service)
    server.start()
    try:
        with _client(server) as client:
            with pytest.raises(ServerOverloadedError):
                client.tpcd(6)
            stats = client.stats()
        assert stats["counters"]["crash_retries"] >= 1
        assert stats["counters"]["overloads"] >= 1
    finally:
        server.stop()
        service.close()


# ----------------------------------------------------------------------
# graceful drain
# ----------------------------------------------------------------------
def test_drain_finishes_stragglers_and_refuses_new_work(
        db_dir, serial_checksums):
    service = QueryService(db_dir, procs=1)
    server = QueryServer(service)
    server.start()
    straggler = {}
    try:
        early = _client(server)
        bystander = _client(server)
        early.tpcd(6)                        # pool warm

        plan = faults.FaultPlan().arm("server.handle.delay",
                                      action="delay", delay_s=0.8)

        def slow_request():
            try:
                straggler["reply"] = early.tpcd(12)
            except BaseException as exc:     # noqa: BLE001
                straggler["error"] = exc

        with faults.use(plan):
            thread = threading.Thread(target=slow_request)
            thread.start()
            time.sleep(0.25)                 # request is in-flight
            drained = server.drain(timeout=10.0)
            thread.join(timeout=30)
        # the in-flight request finished inside the drain window...
        assert drained is True
        assert straggler["reply"].checksum == serial_checksums[12]
        # ...while new work was refused typed, and new connections
        # are no longer accepted
        with pytest.raises(ServerDrainingError):
            bystander.tpcd(6)
        host, port = server.address
        with pytest.raises((ConnectionError, OSError)):
            socket.create_connection((host, port), timeout=0.5)
        early.close()
        bystander.close()
    finally:
        server.stop()
        service.close()


def test_drain_deadline_sends_typed_error_to_stragglers(db_dir):
    service = QueryService(db_dir, procs=1)
    server = QueryServer(service)
    server.start()
    straggler = {}
    try:
        client = _client(server)
        client.tpcd(6)                       # pool warm
        plan = faults.FaultPlan().arm("server.handle.delay",
                                      action="delay", delay_s=3.0)

        def slow_request():
            try:
                straggler["reply"] = client.tpcd(12)
            except BaseException as exc:     # noqa: BLE001
                straggler["error"] = exc

        with faults.use(plan):
            thread = threading.Thread(target=slow_request)
            thread.start()
            time.sleep(0.25)
            drained = server.drain(timeout=0.2)
            thread.join(timeout=30)
        assert drained is False
        # the straggler was not left hanging on a torn socket: it got
        # the server's final typed drain frame
        assert isinstance(straggler.get("error"), ServerDrainingError)
        client.close()
    finally:
        server.stop()
        service.close()
