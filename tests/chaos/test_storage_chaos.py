"""Crash-safe persistence sweep: kill or fail a save at every point.

The save protocol (generation-prefixed heap files, write-temp +
fsync + rename, one directory fsync after the manifest rename, a
recovery sweep on the next locked open) promises: a save killed at
**any** injection point leaves the catalog fully readable — at the
previous generation when the manifest rename had not happened yet,
at the new one when it had — with zero staging litter after the next
reopen and every query still checksum-identical to the serial
reference.

Each ``crash`` case forks a child that installs a one-shot fault
plan and re-saves the catalog; the child must die with
``faults.CRASH_EXIT_CODE`` (the fault fired) and the parent then
verifies the differential contract.  The ``raise`` cases run
in-process: the save fails typed, the catalog stays intact, and a
subsequent clean save succeeds.
"""

import multiprocessing
import os

import pytest

from repro import faults
from repro.monet.storage import catalog_generation
from repro.tpcd import open_tpcd
from repro.tpcd.loader import save_tpcd

from chaos_utils import HAVE_FORK, assert_catalog_intact

pytestmark = pytest.mark.skipif(
    not HAVE_FORK, reason="storage chaos forks crashing children")

#: Every declared save-path injection point (importing repro.monet.
#: storage registers them).  The sweep below parametrises over this
#: list, so a newly instrumented point fails the suite until covered.
STORAGE_POINTS = (
    "storage.save.begin",
    "storage.save.heaps_written",
    "storage.save.manifest_written",
    "storage.write_array.torn",
    "storage.write_array.staged",
    "storage.write_array.synced",
    "storage.write_array.renamed",
    "storage.manifest.torn",
    "storage.manifest.staged",
    "storage.manifest.synced",
    "storage.manifest.renamed",
)


def test_sweep_covers_every_declared_storage_point():
    assert tuple(faults.registered_points("storage.")) == \
        tuple(sorted(STORAGE_POINTS))


def _plan_for(point, conclusion):
    plan = faults.FaultPlan()
    if point.endswith(".torn"):
        plan.arm(point, action="tear", fraction=0.5, then=conclusion)
    else:
        plan.arm(point, action=conclusion)
    return plan


def _crashing_resave(db_dir, point):
    """Child body: arm ``point`` to crash, then re-save the catalog."""
    faults.set_plan(_plan_for(point, "crash"))
    db, _report = open_tpcd(db_dir)
    save_tpcd(db, db_dir)
    os._exit(0)          # the fault did not fire: the parent fails


@pytest.mark.parametrize("point", STORAGE_POINTS)
def test_save_killed_at_point_leaves_catalog_readable(
        db_dir, serial_checksums, point):
    before = catalog_generation(db_dir)
    ctx = multiprocessing.get_context("fork")
    child = ctx.Process(target=_crashing_resave, args=(db_dir, point))
    child.start()
    child.join(timeout=120)
    assert child.exitcode == faults.CRASH_EXIT_CODE, \
        "expected the injected crash at %s, child exited %r" \
        % (point, child.exitcode)
    after = assert_catalog_intact(db_dir, serial_checksums)
    # pre-rename kills leave the previous generation; the two
    # post-rename points (save.manifest_written fires after the
    # manifest landed, manifest.renamed between rename and directory
    # sync) may legitimately surface the new one
    if point in ("storage.save.manifest_written",
                 "storage.manifest.renamed"):
        assert after in (before, before + 1)
    else:
        assert after == before, \
            "%s killed the save before the manifest rename, yet the " \
            "generation moved %d -> %d" % (point, before, after)


@pytest.mark.parametrize("point", STORAGE_POINTS)
def test_save_failing_typed_at_point_is_recoverable(
        db_dir, serial_checksums, point):
    from repro.errors import InjectedFaultError

    before = catalog_generation(db_dir)
    db, _report = open_tpcd(db_dir)
    with faults.use(_plan_for(point, "raise")):
        if point in ("storage.save.manifest_written",
                     "storage.manifest.renamed"):
            # these fire after the manifest rename: the save has
            # already succeeded when the error surfaces
            with pytest.raises(InjectedFaultError):
                save_tpcd(db, db_dir)
            assert catalog_generation(db_dir) == before + 1
        else:
            with pytest.raises(InjectedFaultError):
                save_tpcd(db, db_dir)
            assert catalog_generation(db_dir) == before
    assert_catalog_intact(db_dir, serial_checksums)
    # with the plan gone the next save goes through cleanly
    db, _report = open_tpcd(db_dir)
    save_tpcd(db, db_dir)
    assert catalog_generation(db_dir) > before
    assert_catalog_intact(db_dir, serial_checksums)
