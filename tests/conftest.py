"""Shared fixtures: a small hand-built MOA database + a tiny TPC-D."""

import pytest

from repro.moa import MOADatabase, Schema, ref, setof, tupleof
from repro.moa.types import CHAR, DOUBLE, INSTANT, INT, STRING
from repro.monet.atoms import date_to_days as d


def small_schema():
    schema = Schema()
    schema.define("Region", [("name", STRING)])
    schema.define("Nation", [("name", STRING),
                             ("region", ref("Region"))])
    schema.define("Supplier", [
        ("name", STRING), ("acctbal", DOUBLE),
        ("nation", ref("Nation")),
        ("supplies", setof(tupleof(("cost", DOUBLE),
                                   ("available", INT)))),
    ])
    schema.define("Order", [("clerk", STRING), ("orderdate", INSTANT)])
    schema.define("Item", [
        ("order", ref("Order")), ("returnflag", CHAR),
        ("extendedprice", DOUBLE), ("discount", DOUBLE),
        ("tags", setof(STRING)),
    ])
    return schema


def small_data():
    return {
        "Region": {0: {"name": "EUROPE"}, 1: {"name": "ASIA"}},
        "Nation": {0: {"name": "FRANCE", "region": 0},
                   1: {"name": "JAPAN", "region": 1}},
        "Supplier": {
            0: {"name": "s0", "acctbal": 10.0, "nation": 0,
                "supplies": [{"cost": 5.0, "available": 0},
                             {"cost": 7.0, "available": 3}]},
            1: {"name": "s1", "acctbal": 20.0, "nation": 1,
                "supplies": [{"cost": 2.0, "available": 0}]},
            2: {"name": "s2", "acctbal": -3.5, "nation": 1,
                "supplies": []},
        },
        "Order": {
            100: {"clerk": "Clerk#1", "orderdate": d("1995-03-05")},
            101: {"clerk": "Clerk#2", "orderdate": d("1996-07-01")},
            102: {"clerk": "Clerk#1", "orderdate": d("1995-11-11")},
        },
        "Item": {
            0: {"order": 100, "returnflag": "R", "extendedprice": 100.0,
                "discount": 0.1, "tags": ["a", "b"]},
            1: {"order": 100, "returnflag": "N", "extendedprice": 50.0,
                "discount": 0.0, "tags": []},
            2: {"order": 101, "returnflag": "R", "extendedprice": 80.0,
                "discount": 0.2, "tags": ["b"]},
            3: {"order": 102, "returnflag": "R", "extendedprice": 30.0,
                "discount": 0.0, "tags": ["c", "a", "b"]},
            4: {"order": 102, "returnflag": "A", "extendedprice": 10.0,
                "discount": 0.0, "tags": ["a"]},
        },
    }


@pytest.fixture(scope="session")
def small_db():
    db = MOADatabase(small_schema())
    db.load(small_data())
    db.build_accelerators()
    return db


@pytest.fixture(scope="session")
def tiny_tpcd():
    from repro.tpcd import generate
    return generate(scale=0.0005, seed=11)


@pytest.fixture(scope="session")
def tiny_tpcd_db(tiny_tpcd):
    from repro.tpcd import load_tpcd
    db, _report = load_tpcd(tiny_tpcd)
    return db
