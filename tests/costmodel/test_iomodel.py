"""Section 5.2.2 analytic model: formulas, crossover, validation."""

import math

import pytest

from repro.errors import CostModelError
from repro.costmodel import (CostModelParams, crossover, e_dv, e_rel,
                             figure8_series, validate)

PAPER = CostModelParams(n_rows=6_000_000, n_attrs=16, width=4,
                        page_size=4096)


def test_entries_per_page():
    assert PAPER.c_inv == 512      # B / 2w
    assert PAPER.c_rel == 60       # B / (n+1)w
    assert PAPER.c_bat == 512
    assert PAPER.c_dv == 1024      # B / w


def test_formulas_by_hand():
    # E_rel(s) = ceil(sX/C_inv) + ceil(X/C_rel)(1-(1-s)^C_rel)
    s = 0.01
    expected = (math.ceil(s * 6e6 / 512)
                + math.ceil(6e6 / 60) * (1 - (1 - s) ** 60))
    assert abs(e_rel(s, PAPER) - expected) < 1e-9
    # E_dv(s) = ceil(sX/C_bat) + (p+1) ceil(X/C_dv)(1-(1-s)^C_dv)
    expected = (math.ceil(s * 6e6 / 512)
                + 4 * math.ceil(6e6 / 1024) * (1 - (1 - s) ** 1024))
    assert abs(e_dv(s, 3, PAPER) - expected) < 1e-9


def test_zero_selectivity():
    assert e_rel(0.0, PAPER) == 0
    assert e_dv(0.0, 3, PAPER) == 0


def test_full_selectivity_bounds():
    # at s=1 every page of every structure is touched
    assert e_rel(1.0, PAPER) == math.ceil(6e6 / 512) + math.ceil(6e6 / 60)
    assert e_dv(1.0, 0, PAPER) == math.ceil(6e6 / 512) \
        + math.ceil(6e6 / 1024)


def test_paper_crossover():
    # "the crossover point for n = 16, p = 3 is at s ~ 0.004"
    point = crossover(3, PAPER)
    assert point is not None
    assert 0.003 < point < 0.006


def test_crossover_grows_with_p():
    # more projected attributes -> more semijoins -> later crossover
    points = [crossover(p, PAPER) for p in (1, 3, 6, 9)]
    assert all(p is not None for p in points)
    assert points == sorted(points)


def test_monet_wins_above_crossover():
    point = crossover(3, PAPER)
    assert e_dv(point * 2, 3, PAPER) < e_rel(point * 2, PAPER)
    assert e_dv(point / 2, 3, PAPER) > e_rel(point / 2, PAPER)


def test_no_crossover_for_huge_p():
    # with enough semijoins the dv strategy never wins on this range
    assert crossover(40, PAPER, hi=0.5) is None


def test_figure8_series_shape():
    grid, series = figure8_series(PAPER)
    assert len(series) == 6
    assert all(len(v) == len(grid) for v in series.values())
    # monotone non-decreasing in s
    for values in series.values():
        assert all(a <= b + 1e-9 for a, b in zip(values, values[1:]))
    # Edv curves ordered by p
    assert all(a <= b for a, b in
               zip(series["Edv(p=1,n=16)"], series["Edv(p=3,n=16)"]))


def test_invalid_params():
    with pytest.raises(CostModelError):
        CostModelParams(n_rows=0)
    with pytest.raises(CostModelError):
        e_rel(1.5, PAPER)
    with pytest.raises(CostModelError):
        e_dv(0.1, -1, PAPER)


def test_empirical_validation_tracks_model():
    rows = validate(n_rows=30_000, selectivities=(0.01, 0.2),
                    p_attrs=3)
    for row in rows:
        # the relational side is driven by exactly the model's math
        assert row["measured_rel"] <= 2.5 * row["model_rel"] + 10
        assert row["model_rel"] <= 2.5 * row["measured_rel"] + 10
        # the dv side adds probe/selection noise; same order of
        # magnitude is the claim
        assert row["measured_dv"] <= 4 * row["model_dv"] + 30
