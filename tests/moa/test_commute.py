"""The Figure 6 commuting diagram, over a broad query corpus.

Every query is executed along both gray paths — the MIL translation on
the flattened BATs, and the reference evaluator on the logical objects
— and the results must be equivalent.  This is the paper's correctness
criterion for the implementation of MOA on MIL.
"""

import pytest

QUERIES = [
    # selections: point, range, conjunction, navigation, general preds
    "select[=(returnflag, 'R')](Item)",
    "select[>(extendedprice, 40.0)](Item)",
    "select[<=(extendedprice, 50.0)](Item)",
    "select[>=(discount, 0.1)](Item)",
    "select[=(returnflag, 'R'), >(extendedprice, 50.0)](Item)",
    "select[and(=(returnflag, 'R'), >(extendedprice, 50.0))](Item)",
    "select[or(=(returnflag, 'A'), =(returnflag, 'N'))](Item)",
    "select[not(=(returnflag, 'R'))](Item)",
    'select[=(order.clerk, "Clerk#1")](Item)',
    'select[=(nation.region.name, "ASIA")](Supplier)',
    "select[!=(returnflag, 'R')](Item)",
    "select[=(discount, 0.0)](Item)",
    'select[<(orderdate, date("1996-01-01"))](Order)',
    # selection comparing two attributes (no literal)
    "select[<(discount, extendedprice)](Item)",
    # projections
    "project[extendedprice](Item)",
    "project[<extendedprice : p, discount : d>](Item)",
    "project[*(extendedprice, -(1.0, discount))](Item)",
    "project[<year(orderdate) : y, clerk : c>](Order)",
    "project[%0](Nation)",
    "project[<%0 : self, name : n>](Nation)",
    "project[order.clerk](Item)",
    "project[nation.region.name](Supplier)",
    # nest + aggregates over groups
    "nest[returnflag](Item)",
    "nest[returnflag, discount](Item)",
    "project[<returnflag : f, count(%group) : n>]"
    "(nest[returnflag](Item))",
    "project[<returnflag : f, sum(project[extendedprice](%group)) : s,"
    " avg(project[discount](%group)) : a,"
    " min(project[extendedprice](%group)) : lo,"
    " max(project[extendedprice](%group)) : hi>]"
    "(nest[returnflag](Item))",
    "nest[order.clerk : clerk](Item)",
    "nest[order](Item)",
    # nested sets (section 4.3.2)
    "project[<%name, select[=(%available, 0)](%supplies) : z>]"
    "(Supplier)",
    "project[<name : n, count(%supplies) : c>](Supplier)",
    "project[<name : n, min(project[cost](%supplies)) : mc>]"
    "(select[>(count(%supplies), 0)](Supplier))",
    "project[<name : n, select[=(%0, \"a\")](%tags) : a_tags>](Item)"
    .replace("name : n", "returnflag : n"),
    "project[<returnflag : f, count(%tags) : nt>](Item)",
    # joins / semijoins / unnest
    "join[%0, order](Order, Item)",
    "join[clerk, order.clerk](Order, Item)",
    "project[<%1.clerk : c, %2.extendedprice : p>]"
    "(join[%0, order](Order, Item))",
    "semijoin[%0, order](Order, select[=(returnflag, 'A')](Item))",
    "antijoin[%0, order](Order, select[=(returnflag, 'A')](Item))",
    "unnest[supplies](Supplier)",
    "project[<%1.name : s, %2.cost : c>](unnest[supplies](Supplier))",
    "select[<(%2.available, 2)](unnest[supplies](Supplier))",
    "unnest[tags](Item)",
    # multi-key join
    "join[<order, returnflag>, <order, returnflag>](Item, Item)",
    # set operations
    "union(select[=(returnflag, 'R')](Item), "
    "select[=(returnflag, 'A')](Item))",
    "difference(Item, select[=(returnflag, 'R')](Item))",
    "intersection(Item, select[=(returnflag, 'R')](Item))",
    "union(project[returnflag](Item), project[returnflag](Item))",
    "difference(project[%0](Order), "
    "project[order](select[=(returnflag, 'R')](Item)))",
    # membership
    "select[in(nation, project[%0](Nation))](Supplier)",
    "select[in(order.clerk, project[clerk]"
    "(select[<(orderdate, date(\"1996-01-01\"))](Order)))](Item)",
    "select[not(in(returnflag, project[returnflag]"
    "(select[=(discount, 0.2)](Item))))](Item)",
    # sort / top (ordered comparison)
    "sort[extendedprice desc](Item)",
    "sort[returnflag asc, extendedprice desc](Item)",
    "top[3](sort[extendedprice desc](Item))",
    "top[2](sort[acctbal desc](Supplier))",
    "top[100](sort[extendedprice asc](Item))",
    # scalar roots
    "count(Item)",
    "sum(project[extendedprice](Item))",
    "avg(project[discount](Item))",
    "min(project[extendedprice](Item))",
    "max(project[extendedprice](Item))",
    "count(select[=(returnflag, 'R')](Item))",
    # deep compositions
    "project[<y : y, sum(project[r](%group)) : loss>](nest[y]("
    "project[<year(order.orderdate) : y, "
    "*(extendedprice, -(1.0, discount)) : r>]("
    "select[=(order.clerk, \"Clerk#1\"), =(returnflag, 'R')](Item))))",
    "top[2](sort[s desc](project[<returnflag : f, "
    "sum(project[extendedprice](%group)) : s>]"
    "(nest[returnflag](Item))))",
    "project[<%1.%1.name : s, %1.%2.cost : c>](join[<%2.cost>, <%2.cost>]"
    "(unnest[supplies](Supplier), unnest[supplies](Supplier)))"
    .replace("join[<%2.cost>, <%2.cost>]", "join[%2.cost, %2.cost]"),
    "project[ifthenelse(=(returnflag, 'R'), extendedprice, 0.0)](Item)",
    "project[<returnflag : f, ifthenelse(startswith(order.clerk, "
    "\"Clerk\"), 1, 0) : is_clerk>](Item)",
]


@pytest.mark.parametrize("query", QUERIES)
def test_commutes(small_db, query):
    small_db.check_commutes(query)


def test_empty_results_commute(small_db):
    small_db.check_commutes('select[=(returnflag, \'Z\')](Item)')
    small_db.check_commutes(
        'project[extendedprice](select[=(returnflag, \'Z\')](Item))')
    small_db.check_commutes(
        "nest[returnflag](select[=(returnflag, 'Z')](Item))")
    assert small_db.query(
        "count(select[=(returnflag, 'Z')](Item))").rows == 0


def test_empty_class_commutes(small_db):
    # Supplier 2 has an empty supplies set
    physical = small_db.query(
        "project[<name : n, count(%supplies) : c>](Supplier)").rows
    by_name = {r["n"]: r["c"] for r in physical}
    assert by_name["s2"] == 0
