"""Property-based Figure 6 check: random queries must commute.

A hypothesis strategy composes random (but well-typed) MOA queries
over the small test schema — selections with random predicates,
projections, nesting with aggregates, sorts, tops, set operations —
and every generated query is executed along both paths of Figure 6.
"""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

_PREDICATES = [
    "=(returnflag, 'R')",
    "=(returnflag, 'A')",
    "!=(returnflag, 'N')",
    ">(extendedprice, 40.0)",
    "<=(extendedprice, 80.0)",
    ">=(discount, 0.1)",
    "=(discount, 0.0)",
    '=(order.clerk, "Clerk#1")',
    '<(order.orderdate, date("1996-01-01"))',
    "<(discount, extendedprice)",
]

_PROJECT_ITEMS = [
    "extendedprice : p",
    "discount : d",
    "returnflag : f",
    "*(extendedprice, -(1.0, discount)) : rev",
    "year(order.orderdate) : y",
    "order.clerk : c",
    "ifthenelse(=(returnflag, 'R'), 1, 0) : isr",
]

_NEST_KEYS = ["returnflag", "order.clerk : clerk",
              "year(order.orderdate) : y", "discount"]

_SORT_KEYS = ["extendedprice", "discount", "returnflag"]


@st.composite
def item_query(draw):
    """A random well-typed query over the Item extent."""
    query = "Item"
    # optional selection
    if draw(st.booleans()):
        predicates = draw(st.lists(st.sampled_from(_PREDICATES),
                                   min_size=1, max_size=3,
                                   unique=True))
        query = "select[%s](%s)" % (", ".join(predicates), query)
    shape = draw(st.sampled_from(
        ["plain", "project", "nest", "nest_agg", "setop"]))
    if shape == "project":
        items = draw(st.lists(st.sampled_from(_PROJECT_ITEMS),
                              min_size=1, max_size=3, unique=True))
        query = "project[<%s>](%s)" % (", ".join(items), query)
    elif shape == "nest":
        keys = draw(st.lists(st.sampled_from(_NEST_KEYS), min_size=1,
                             max_size=2, unique=True))
        query = "nest[%s](%s)" % (", ".join(keys), query)
    elif shape == "nest_agg":
        key = draw(st.sampled_from(_NEST_KEYS))
        agg = draw(st.sampled_from(
            ["count(%group) : n",
             "sum(project[extendedprice](%group)) : s",
             "avg(project[discount](%group)) : a",
             "max(project[extendedprice](%group)) : m"]))
        name = key.split(" : ")[-1] if " : " in key \
            else key.split(".")[-1]
        query = ("project[<%s : k, %s>](nest[%s](%s))"
                 % (name, agg, key, query))
    elif shape == "setop":
        kind = draw(st.sampled_from(["union", "difference",
                                     "intersection"]))
        other_pred = draw(st.sampled_from(_PREDICATES))
        query = "%s(%s, select[%s](Item))" % (kind, query, other_pred)
    # optional ordering on plain Item-element results
    if shape == "plain" and draw(st.booleans()):
        key = draw(st.sampled_from(_SORT_KEYS))
        desc = draw(st.booleans())
        query = "sort[%s %s](%s)" % (key, "desc" if desc else "asc",
                                     query)
        if draw(st.booleans()):
            query = "top[%d](%s)" % (draw(st.integers(1, 4)), query)
    return query


@settings(max_examples=120, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(item_query())
def test_random_queries_commute(small_db, query):
    small_db.check_commutes(query)


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(st.sampled_from(_PREDICATES), st.sampled_from(_PREDICATES))
def test_select_commutativity(small_db, p1, p2):
    """select[p1](select[p2](X)) == select[p2](select[p1](X)) — an
    algebraic law the rewriter must preserve."""
    a = small_db.query("select[%s](select[%s](Item))" % (p1, p2)).rows
    b = small_db.query("select[%s](select[%s](Item))" % (p2, p1)).rows
    from repro.moa.values import sequences_equivalent
    assert sequences_equivalent(a, b)


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(st.sampled_from(_PREDICATES), st.sampled_from(_PREDICATES))
def test_conjunction_equals_cascade(small_db, p1, p2):
    """select[p1, p2](X) == select[and(p1, p2)](X) == cascade."""
    from repro.moa.values import sequences_equivalent
    multi = small_db.query("select[%s, %s](Item)" % (p1, p2)).rows
    anded = small_db.query("select[and(%s, %s)](Item)" % (p1, p2)).rows
    cascade = small_db.query(
        "select[%s](select[%s](Item))" % (p2, p1)).rows
    assert sequences_equivalent(multi, anded)
    assert sequences_equivalent(multi, cascade)
