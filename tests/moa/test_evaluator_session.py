"""Reference evaluator units + the MOADatabase session facade."""

import pytest

from repro.errors import EvaluationError, RewriteError
from repro.moa import Bag, Ref, Row, evaluate, parse, resolve
from repro.monet.buffer import BufferManager


def _eval(small_db, text):
    resolved = small_db.prepare(text)
    return evaluate(resolved, small_db.flat.data)


# ----------------------------------------------------------------------
# evaluator semantics
# ----------------------------------------------------------------------
def test_extent_evaluates_to_refs(small_db):
    out = _eval(small_db, "Nation")
    assert out == [Ref("Nation", 0), Ref("Nation", 1)]


def test_attribute_navigation(small_db):
    out = _eval(small_db, "project[order.clerk](Item)")
    assert sorted(out) == ["Clerk#1", "Clerk#1", "Clerk#1", "Clerk#1",
                           "Clerk#2"]


def test_nested_set_values_are_bags(small_db):
    out = _eval(small_db,
                "project[<name : n, %supplies : s>](Supplier)")
    by_name = {r["n"]: r["s"] for r in out}
    assert isinstance(by_name["s0"], Bag)
    assert len(by_name["s0"]) == 2 and len(by_name["s2"]) == 0


def test_aggregate_semantics(small_db):
    assert _eval(small_db, "count(Item)") == 5
    assert _eval(small_db, "sum(project[extendedprice](Item))") == 270.0
    assert _eval(small_db,
                 "max(project[extendedprice](Item))") == 100.0
    assert _eval(small_db,
                 "count(select[=(returnflag, 'Z')](Item))") == 0
    assert _eval(small_db,
                 "sum(project[extendedprice]"
                 "(select[=(returnflag, 'Z')](Item)))") == 0
    assert _eval(small_db,
                 "min(project[extendedprice]"
                 "(select[=(returnflag, 'Z')](Item)))") is None


def test_year_and_string_functions(small_db):
    out = _eval(small_db, "project[year(orderdate)](Order)")
    assert sorted(out) == [1995, 1995, 1996]
    out = _eval(small_db,
                "project[startswith(clerk, \"Clerk\")](Order)")
    assert out == [True, True, True]


def test_sort_orders_results(small_db):
    out = _eval(small_db, "sort[extendedprice desc](Item)")
    prices = [small_db.flat.data["Item"][r.oid]["extendedprice"]
              for r in out]
    assert prices == sorted(prices, reverse=True)


def test_join_pairs(small_db):
    out = _eval(small_db, "join[%0, order](Order, Item)")
    assert all(isinstance(r, Row) and isinstance(r.at(1), Ref)
               for r in out)
    assert len(out) == 5     # every item matches its order once


def test_dangling_reference_detected(small_db):
    resolved = small_db.prepare("project[order.clerk](Item)")
    broken = {"Item": {0: {"order": 999, "returnflag": "R",
                           "extendedprice": 1.0, "discount": 0.0,
                           "tags": []}},
              "Order": {}}
    with pytest.raises(EvaluationError):
        evaluate(resolved, broken)


# ----------------------------------------------------------------------
# session facade
# ----------------------------------------------------------------------
def test_query_result_contents(small_db):
    result = small_db.query("select[=(returnflag, 'R')](Item)")
    assert len(result.rows) == 3
    assert result.trace is not None and result.trace.total_ms >= 0
    assert result.rep is not None
    assert result.elapsed_ms >= 0
    assert len(result.program) > 0


def test_scalar_query_result(small_db):
    result = small_db.query("count(Item)")
    assert result.rows == 5
    assert result.rep is None


def test_query_with_buffer_manager(small_db):
    manager = BufferManager(page_size=4096)
    result = small_db.query("select[=(returnflag, 'R')](Item)",
                            buffer_manager=manager)
    assert manager.faults > 0
    assert result.trace.total_faults == manager.faults


def test_mil_text_is_renderable(small_db):
    text = small_db.mil_text("top[2](sort[extendedprice desc](Item))")
    assert "sortby(" in text and "slice(" in text


def test_query_accepts_parsed_ast(small_db):
    tree = parse("count(Item)")
    assert small_db.query(tree).rows == 5


def test_check_commutes_raises_on_mismatch(small_db):
    # sabotage: evaluate against different data than what was loaded
    resolved = small_db.prepare("count(Item)")
    good = evaluate(resolved, small_db.flat.data)
    assert good == 5
    import repro.moa.session as session_mod
    physical = small_db.query("count(Item)").rows
    assert physical == good


def test_rewrite_errors_are_reported(small_db):
    with pytest.raises(RewriteError):
        small_db.compile(
            "union(project[<extendedprice : a, discount : b>](Item), "
            "project[<extendedprice : a, discount : b>](Item))")


def test_query_before_load_fails():
    from repro.moa import MOADatabase, Schema
    from repro.moa.types import INT
    schema = Schema()
    schema.define("T", [("x", INT)])
    db = MOADatabase(schema)
    with pytest.raises(RuntimeError):
        db.query("T")


def test_trace_has_per_statement_rows(small_db):
    result = small_db.query(
        'select[=(order.clerk, "Clerk#1"), =(returnflag, \'R\')](Item)')
    texts = [row.text for row in result.trace.rows]
    assert any("select(Order_clerk" in t for t in texts)
    assert any("join(Item_order" in t for t in texts)
    assert result.trace.format_table().count("\n") >= len(texts)
