"""MOA types, schema, values, parser, structure functions."""

import pytest

from repro.errors import (EvaluationError, ParseError, SchemaError,
                          TypeSystemError)
from repro.moa import Bag, Ref, Row, Schema, parse, ref, setof, tupleof
from repro.moa import ast
from repro.moa.types import (DOUBLE, INT, STRING, BaseType, ClassRef,
                             SetType, TupleType)
from repro.moa.values import (canonical_key, equivalent, is_ivs,
                              is_synchronous, sequences_equivalent)


# ----------------------------------------------------------------------
# type system (section 3.3 formal definition)
# ----------------------------------------------------------------------
def test_type_constructors_compose():
    t = SetType(TupleType([("a", INT), ("b", SetType(STRING))]))
    assert t.render() == "{<a: int, b: {string}>}"
    assert t == SetType(TupleType([("a", INT),
                                   ("b", SetType(STRING))]))
    assert hash(t) == hash(SetType(TupleType([("a", INT),
                                              ("b", SetType(STRING))])))


def test_tuple_field_access():
    t = TupleType([("x", INT), ("y", DOUBLE)])
    assert t.field("y") is DOUBLE
    assert t.field_at(1) == ("x", INT)
    with pytest.raises(TypeSystemError):
        t.field("z")
    with pytest.raises(TypeSystemError):
        t.field_at(3)


def test_tuple_duplicate_names_rejected():
    with pytest.raises(TypeSystemError):
        TupleType([("x", INT), ("x", INT)])


def test_void_not_a_base_type():
    with pytest.raises(TypeSystemError):
        BaseType("void")


# ----------------------------------------------------------------------
# schema
# ----------------------------------------------------------------------
def test_schema_validation_catches_dangling_ref():
    schema = Schema()
    schema.define("A", [("b", ref("B"))])
    with pytest.raises(SchemaError):
        schema.validate()


def test_schema_cycles_allowed():
    schema = Schema()
    schema.define("A", [("b", ref("B"))])
    schema.define("B", [("a", ref("A"))])
    schema.validate()


def test_schema_duplicate_class():
    schema = Schema()
    schema.define("A", [("x", INT)])
    with pytest.raises(SchemaError):
        schema.define("A", [("x", INT)])


def test_schema_render_figure1_style():
    schema = Schema()
    schema.define("Nation", [("name", STRING),
                             ("region", ref("Region"))])
    text = schema.render()
    assert "class Nation <" in text
    assert "region : Region" in text


# ----------------------------------------------------------------------
# values
# ----------------------------------------------------------------------
def test_ref_identity():
    assert Ref("Item", 3) == Ref("Item", 3)
    assert Ref("Item", 3) != Ref("Order", 3)
    assert hash(Ref("Item", 3)) == hash(Ref("Item", 3))


def test_row_access():
    row = Row([("a", 1), ("b", "x")])
    assert row["b"] == "x"
    assert row.at(1) == 1
    assert row.names == ("a", "b")
    with pytest.raises(EvaluationError):
        row["missing"]
    with pytest.raises(EvaluationError):
        row.at(3)
    with pytest.raises(EvaluationError):
        Row([("a", 1), ("a", 2)])


def test_bag_multiset_equality():
    assert Bag([1, 2, 2]) == Bag([2, 1, 2])
    assert Bag([1, 2]) != Bag([1, 2, 2])


def test_equivalent_float_tolerance():
    assert equivalent(Bag([0.1 + 0.2]), Bag([0.3]))
    assert equivalent(Row([("x", 1.0000000001)]), Row([("x", 1.0)]))
    assert not equivalent(Row([("x", 1.1)]), Row([("x", 1.0)]))


def test_sequences_equivalent_modes():
    assert sequences_equivalent([1, 2], [2, 1])
    assert not sequences_equivalent([1, 2], [2, 1], ordered=True)
    assert sequences_equivalent([1, 2], [1, 2], ordered=True)


def test_canonical_key_total_order():
    values = [Bag([2, 1]), Row([("a", 1)]), Ref("X", 1), 3.5, True]
    sorted(values, key=canonical_key)     # must not raise


def test_ivs_formalism():
    # section 3.3: ids unique within the set; synchronicity = same ids
    assert is_ivs([(1, "a"), (2, "b")])
    assert not is_ivs([(1, "a"), (1, "b")])
    assert is_synchronous([(1, "a"), (2, "b")], [(2, 20), (1, 10)])
    assert not is_synchronous([(1, "a")], [(2, "b")])


# ----------------------------------------------------------------------
# parser
# ----------------------------------------------------------------------
def test_parse_paper_q13():
    text = ('project[<date : year, sum(project[revenue](%2)) : loss>]('
            'nest[date](project[<year(order.orderdate) : date, '
            '*(extendedprice, -(1.0, discount)) : revenue>]('
            'select[=(order.clerk, "Clerk#000000088"), '
            "=(returnflag, 'R')](Item))))")
    tree = parse(text)
    assert isinstance(tree, ast.Project)
    assert isinstance(tree.input, ast.Nest)
    select = tree.input.input.input
    assert isinstance(select, ast.Select)
    assert len(select.predicates) == 2
    assert isinstance(select.input, ast.Name)


def test_parse_render_round_trip():
    texts = [
        "select[=(a, 1)](X)",
        "project[<a : x, sum(project[b](%2)) : s>](X)",
        'select[=(order.clerk, "C"), <(shipdate, date("1998-09-02"))](Item)',
        "join[a, b](X, Y)",
        "semijoin[%0, order](X, Y)",
        "antijoin[%1, %2](X, Y)",
        "nest[a, b : key](X)",
        "unnest[supplies](X)",
        "sort[a asc, b desc](X)",
        "top[10](X)",
        "union(X, Y)",
        "difference(X, Y)",
        "intersection(X, Y)",
        "in(a, X)",
        "not(=(a, 1))",
        "ifthenelse(=(a, 1), b, c)",
    ]
    for text in texts:
        tree = parse(text)
        assert parse(tree.render()).render() == tree.render()


def test_parse_literals():
    assert parse("1").value == 1
    assert parse("1.5").value == 1.5
    assert parse('"xyz"').value == "xyz"
    assert parse("'R'").atom_name == "char"
    assert parse("true").value is True
    lit = parse('date("1970-01-02")')
    assert lit.atom_name == "instant" and lit.value == 1


def test_parse_percent_forms():
    assert isinstance(parse("%0"), ast.Element)
    pos = parse("%2")
    assert isinstance(pos, ast.Pos) and pos.index == 2
    attr = parse("%supplies")
    assert isinstance(attr, ast.Attr) and attr.name == "supplies"
    deep = parse("%1.%2.cost")
    assert isinstance(deep, ast.Attr)
    assert isinstance(deep.base, ast.Pos)


def test_parse_less_than_vs_tuple():
    cmp_node = parse("<(a, b)")
    assert isinstance(cmp_node, ast.BinOp) and cmp_node.op == "<"
    tup = parse("<a, b>")
    assert isinstance(tup, ast.TupleCons)
    # '>' operator item inside a tuple
    mixed = parse("<>(a, b) : flag>")
    assert isinstance(mixed, ast.TupleCons)
    assert isinstance(mixed.items[0][0], ast.BinOp)


def test_parse_errors():
    for bad in ["select[](X)", "select[=(a, 1)]", "top[x](X)",
                "project[<>](X)", "<(a", "sum(X, Y)", "1 2",
                'date("foo!")', "%"]:
        with pytest.raises((ParseError, ValueError)):
            parse(bad)


def test_parse_error_reports_position():
    try:
        parse("select[=(a,\n !!)](X)")
    except ParseError as exc:
        assert exc.position is not None
        assert "line 2" in str(exc)
    else:
        raise AssertionError("expected a ParseError")
