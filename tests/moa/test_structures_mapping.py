"""Structure functions + the flattening mapping (paper section 3.3)."""

import pytest

from repro.errors import MappingError
from repro.moa import (Bag, MOADatabase, Ref, Row, Schema, ref, setof,
                       tupleof)
from repro.moa.mapping import flatten
from repro.moa.structures import (AtomRep, InlineAtomRep, InlineRefRep,
                                  Materializer, Mirrored, ObjectRep,
                                  RefRep, SetRep, TupleRep, ViaRep)
from repro.moa.types import DOUBLE, INT, STRING
from repro.monet.kernel import MonetKernel
from repro.monet.mil import Var
from repro.monet import bat_from_pairs


def _schema():
    schema = Schema()
    schema.define("Dept", [("name", STRING)])
    schema.define("Emp", [
        ("name", STRING), ("salary", DOUBLE), ("dept", ref("Dept")),
        ("grades", setof(INT)),
        ("projects", setof(tupleof(("title", STRING),
                                   ("hours", INT)))),
    ])
    return schema


DATA = {
    "Dept": {0: {"name": "R&D"}, 1: {"name": "Sales"}},
    "Emp": {
        10: {"name": "ada", "salary": 100.0, "dept": 0,
             "grades": [1, 2], "projects": [
                 {"title": "x", "hours": 5}]},
        11: {"name": "bob", "salary": 80.0, "dept": 1, "grades": [],
             "projects": [{"title": "x", "hours": 2},
                          {"title": "y", "hours": 7}]},
    },
}


@pytest.fixture(scope="module")
def flat():
    kernel = MonetKernel()
    return flatten(_schema(), DATA, kernel)


# ----------------------------------------------------------------------
# the Figure 3 decomposition
# ----------------------------------------------------------------------
def test_extent_bats(flat):
    extent = flat.kernel.get("Emp")
    assert extent.signature() == "[oid,oid]"
    assert extent.tail.is_void()
    assert [h for h, _t in extent.to_pairs()] == [10, 11]


def test_attribute_bats(flat):
    names = flat.kernel.get("Emp_name")
    assert names.to_pairs() == [(10, "ada"), (11, "bob")]
    dept = flat.kernel.get("Emp_dept")
    assert dept.to_pairs() == [(10, 0), (11, 1)]


def test_simple_set_bat(flat):
    # SET(A) optimisation: one BAT, 0..n BUNs per owner
    grades = flat.kernel.get("Emp_grades")
    assert grades.to_pairs() == [(10, 1), (10, 2)]


def test_tuple_set_bats(flat):
    index = flat.kernel.get("Emp_projects")
    titles = flat.kernel.get("Emp_projects_title")
    hours = flat.kernel.get("Emp_projects_hours")
    assert [h for h, _t in index.to_pairs()] == [10, 11, 11]
    assert [t for _h, t in titles.to_pairs()] == ["x", "x", "y"]
    assert [t for _h, t in hours.to_pairs()] == [5, 2, 7]
    # field BATs are mutually synced (loaded in one group)
    from repro.monet.properties import synced
    assert synced(titles, hours)


def test_class_attribute_bats_synced(flat):
    from repro.monet.properties import synced
    assert synced(flat.kernel.get("Emp_name"),
                  flat.kernel.get("Emp_salary"))


def test_structure_expression_renders(flat):
    rep = flat.class_rep("Emp")
    assert rep.render() == "SET(mirror(Emp), OBJECT(Emp))"
    projects = flat.attribute_rep("Emp", "projects")
    assert isinstance(projects, SetRep)
    assert isinstance(projects.inner, TupleRep)
    grades = flat.attribute_rep("Emp", "grades")
    assert isinstance(grades.inner, InlineAtomRep)
    dept = flat.attribute_rep("Emp", "dept")
    assert isinstance(dept, RefRep)


def test_mapping_rejects_missing_attribute():
    bad = {"Dept": {0: {"name": "x"}},
           "Emp": {1: {"name": "y"}}}       # salary etc. missing
    with pytest.raises(MappingError):
        flatten(_schema(), bad, MonetKernel())


def test_mapping_rejects_wrong_ref_class():
    bad = dict(DATA)
    bad = {"Dept": {0: {"name": "x"}},
           "Emp": {1: {"name": "y", "salary": 1.0,
                       "dept": Ref("Emp", 0), "grades": [],
                       "projects": []}}}
    with pytest.raises(MappingError):
        flatten(_schema(), bad, MonetKernel())


# ----------------------------------------------------------------------
# materialization of rep trees
# ----------------------------------------------------------------------
def _resolver_for(kernel, extra=None):
    extra = extra or {}

    def resolver(source):
        if isinstance(source, Var):
            if source.name in extra:
                return extra[source.name]
            return kernel.get(source.name)
        return source

    return resolver


def test_materialize_class_extent(flat):
    rep = flat.class_rep("Dept")
    rows = Materializer(_resolver_for(flat.kernel)).top_level(rep)
    assert rows == [Ref("Dept", 0), Ref("Dept", 1)]


def test_materialize_tuple_with_nested_set(flat):
    kernel = flat.kernel
    rep = SetRep(
        Mirrored(Var("Emp")),
        TupleRep([
            ("name", AtomRep(Var("Emp_name"), "string")),
            ("projects", SetRep(Var("Emp_projects"), TupleRep([
                ("title", AtomRep(Var("Emp_projects_title"), "string")),
                ("hours", AtomRep(Var("Emp_projects_hours"), "int")),
            ]))),
        ]))
    rows = Materializer(_resolver_for(kernel)).top_level(rep)
    assert rows[0]["name"] == "ada"
    assert rows[0]["projects"] == Bag([Row([("title", "x"),
                                            ("hours", 5)])])
    assert len(rows[1]["projects"]) == 2


def test_materialize_empty_set_owner(flat):
    # bob has no grades: the set map must yield an empty bag
    rep = SetRep(
        Mirrored(Var("Emp")),
        TupleRep([("grades",
                   SetRep(Var("Emp_grades"), InlineAtomRep("int")))]))
    rows = Materializer(_resolver_for(flat.kernel)).top_level(rep)
    assert rows[0]["grades"] == Bag([1, 2])
    assert rows[1]["grades"] == Bag()


def test_materialize_via_rep():
    mapping = bat_from_pairs("oid", "oid", [(100, 1), (101, 2)])
    values = bat_from_pairs("oid", "string", [(1, "a"), (2, "b")])
    rep = ViaRep(mapping, AtomRep(values, "string"))
    materializer = Materializer(lambda s: s)
    value_map = materializer.value_map(rep)
    assert value_map[100] == "a" and value_map[101] == "b"


def test_materialize_inline_ref():
    index = bat_from_pairs("oid", "oid", [(7, 42)])
    rep = SetRep(index, InlineRefRep("Dept"))
    value_map = Materializer(lambda s: s).value_map(rep)
    assert value_map[7] == Bag([Ref("Dept", 42)])


def test_object_rep_identity():
    value_map = Materializer(lambda s: s).value_map(ObjectRep("Emp"))
    assert value_map[10] == Ref("Emp", 10)


# ----------------------------------------------------------------------
# end-to-end through MOADatabase on this schema
# ----------------------------------------------------------------------
def test_end_to_end_commutes_on_hr_schema():
    db = MOADatabase(_schema())
    db.load(DATA)
    db.build_accelerators()
    for query in [
        "select[>(salary, 90.0)](Emp)",
        'project[<name : n, dept.name : d>](Emp)',
        "project[<name : n, sum(project[hours](%projects)) : h>](Emp)",
        "select[in(dept, project[%0](Dept))](Emp)",
        "nest[dept](Emp)",
        "unnest[projects](Emp)",
        "project[<%1.name : who, %2.title : what>]"
        "(unnest[projects](Emp))",
        "sort[salary desc](Emp)",
        "count(Emp)",
    ]:
        db.check_commutes(query)
