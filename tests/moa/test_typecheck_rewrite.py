"""Resolver/type checker + rewriter structure tests."""

import pytest

from repro.errors import TypeCheckError
from repro.moa import parse, resolve
from repro.moa import ast
from repro.moa.types import (BOOLEAN, DOUBLE, INT, LONG, ClassRef,
                             SetType, TupleType)

import importlib.util as _ilu
import pathlib as _pl

_spec = _ilu.spec_from_file_location(
    "_tests_conftest", _pl.Path(__file__).parent.parent / "conftest.py")
_conftest = _ilu.module_from_spec(_spec)
_spec.loader.exec_module(_conftest)
small_schema = _conftest.small_schema


def _resolve(text):
    return resolve(parse(text), small_schema())


# ----------------------------------------------------------------------
# name resolution
# ----------------------------------------------------------------------
def test_bare_names_resolve_to_attributes_and_extents():
    resolved = _resolve("select[=(returnflag, 'R')](Item)")
    select = resolved.root
    assert isinstance(select.input, ast.Extent)
    predicate = select.predicates[0]
    assert isinstance(predicate.left, ast.Attr)
    assert isinstance(predicate.left.base, ast.Element)


def test_unknown_name_rejected():
    with pytest.raises(TypeCheckError):
        _resolve("select[=(nonsense, 1)](Item)")
    with pytest.raises(TypeCheckError):
        _resolve("select[=(returnflag, 'R')](NoSuchClass)")


def test_navigation_typing():
    resolved = _resolve("select[=(order.clerk, \"x\")](Item)")
    pred = resolved.root.predicates[0]
    assert resolved.type_of(pred) == BOOLEAN
    assert resolved.type_of(pred.left).atom.name == "string"


def test_result_types():
    assert _resolve("Item").result_type == SetType(ClassRef("Item"))
    resolved = _resolve(
        "project[<extendedprice : p, discount : d>](Item)")
    element = resolved.result_type.element
    assert isinstance(element, TupleType)
    assert element.field("p") == DOUBLE
    single = _resolve("project[extendedprice](Item)")
    assert single.result_type == SetType(DOUBLE)


def test_nest_type_adds_group():
    resolved = _resolve("nest[returnflag](Item)")
    element = resolved.result_type.element
    assert element.field("returnflag").atom.name == "char"
    assert element.field("group") == SetType(ClassRef("Item"))


def test_join_produces_pair_type():
    resolved = _resolve("join[%0, order](Order, Item)")
    element = resolved.result_type.element
    assert element.field("_1") == ClassRef("Order")
    assert element.field("_2") == ClassRef("Item")


def test_aggregate_typing():
    assert _resolve("count(Item)").result_type == LONG
    assert _resolve("sum(project[extendedprice](Item))").result_type \
        == DOUBLE
    assert _resolve("avg(project[discount](Item))").result_type == DOUBLE
    with pytest.raises(TypeCheckError):
        _resolve("sum(project[returnflag](Item))")


def test_arithmetic_widening_and_division():
    resolved = _resolve(
        "project[*(extendedprice, discount)](Item)")
    assert resolved.result_type.element == DOUBLE
    resolved = _resolve("project[/(extendedprice, 2)](Item)")
    assert resolved.result_type.element == DOUBLE


def test_comparison_type_errors():
    with pytest.raises(TypeCheckError):
        _resolve("select[=(returnflag, 1)](Item)")
    with pytest.raises(TypeCheckError):
        _resolve("select[<(order, order)](Item)")     # refs not ordered
    with pytest.raises(TypeCheckError):
        _resolve("select[and(returnflag, 1)](Item)")


def test_ref_equality_allowed():
    resolved = _resolve("select[=(order, order)](Item)")
    assert resolved.type_of(resolved.root.predicates[0]) == BOOLEAN


def test_ifthenelse_typing():
    resolved = _resolve(
        "project[ifthenelse(=(returnflag, 'R'), extendedprice, 0.0)]"
        "(Item)")
    assert resolved.result_type.element == DOUBLE
    with pytest.raises(TypeCheckError):
        _resolve("project[ifthenelse(=(returnflag, 'R'), "
                 "extendedprice, returnflag)](Item)")


def test_call_signatures():
    with pytest.raises(TypeCheckError):
        _resolve("project[year(extendedprice)](Item)")
    with pytest.raises(TypeCheckError):
        _resolve("project[startswith(extendedprice, \"x\")](Item)")
    with pytest.raises(TypeCheckError):
        _resolve("project[frobnicate(returnflag)](Item)")


def test_nested_set_scope():
    resolved = _resolve(
        "project[<%name, select[=(%available, 0)](%supplies) : z>]"
        "(Supplier)")
    element = resolved.result_type.element
    assert isinstance(element.field("z"), SetType)


def test_sort_key_must_be_comparable():
    with pytest.raises(TypeCheckError):
        _resolve("sort[order asc](Item)")     # a reference


def test_setop_type_match():
    with pytest.raises(TypeCheckError):
        _resolve("union(Item, Order)")


def test_in_typing():
    resolved = _resolve(
        "select[in(nation, project[%0](Nation))](Supplier)")
    assert resolved.type_of(resolved.root.predicates[0]) == BOOLEAN
    with pytest.raises(TypeCheckError):
        _resolve("select[in(acctbal, project[%0](Nation))](Supplier)")


# ----------------------------------------------------------------------
# rewriter structure (MIL text level)
# ----------------------------------------------------------------------
def test_select_rule_emits_semijoin(small_db):
    text = small_db.mil_text("select[=(returnflag, 'R')](Item)")
    # the paper's rule: SET(semijoin(A, T(f(X))), X)
    assert "select(Item_returnflag" in text
    assert "semijoin(Item" in text


def test_indexable_path_plan_is_q13_shaped(small_db):
    text = small_db.mil_text(
        'select[=(order.clerk, "Clerk#1")](Item)')
    lines = text.splitlines()
    assert any('select(Order_clerk, "Clerk#1")' in ln for ln in lines)
    assert any("join(Item_order" in ln for ln in lines)


def test_nest_emits_group_chain(small_db):
    text = small_db.mil_text(
        "nest[returnflag, discount](Item)")
    assert text.count("group(") == 2      # unary + binary group
    assert "{min}" in text                # key extraction


def test_nested_aggregate_single_setaggregate(small_db):
    text = small_db.mil_text(
        "project[<returnflag : f, sum(project[extendedprice](%group)) "
        ": s>](nest[returnflag](Item))")
    assert text.count("{sum}") == 1       # "in one go"


def test_nested_selection_is_flattened(small_db):
    text = small_db.mil_text(
        "project[<%name, select[=(%available, 0)](%supplies) : z>]"
        "(Supplier)")
    # one selection over the flattened field BAT — not per supplier
    assert text.count("select(") == 1


def test_scalar_root_uses_aggr_all(small_db):
    _resolved, result = small_db.compile("count(Item)")
    assert result.scalar_var is not None
    assert "count(" in result.program.render()


def test_column_cache_dedups_semijoins(small_db):
    text = small_db.mil_text(
        "project[<extendedprice : a, *(extendedprice, discount) : b>]"
        "(Item)")
    assert text.count("semijoin(Item_extendedprice") == 1
