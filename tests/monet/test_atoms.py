"""Atom type registry: parsing, coercion, widening, extensibility."""

import datetime

import numpy as np
import pytest

from repro.errors import AtomError
from repro.monet import atoms


def test_registry_has_paper_types():
    # section 3.1: {bool, short, integer, float, double, long, string}
    for name in ("bool", "short", "int", "float", "double", "long",
                 "string", "oid", "char", "void", "instant"):
        assert atoms.atom(name).name == name


def test_aliases():
    assert atoms.atom("integer") is atoms.INT
    assert atoms.atom("str") is atoms.STRING
    assert atoms.atom("dbl") is atoms.DOUBLE
    assert atoms.atom("date") is atoms.INSTANT


def test_unknown_atom():
    with pytest.raises(AtomError):
        atoms.atom("quaternion")


def test_atom_identity_passthrough():
    assert atoms.atom(atoms.INT) is atoms.INT


def test_widths_match_dtypes():
    assert atoms.SHORT.width == 2
    assert atoms.INT.width == 4
    assert atoms.LONG.width == 8
    assert atoms.DOUBLE.width == 8
    assert atoms.VOID.width == 0
    # string column entries are 4-byte heap indices
    assert atoms.STRING.width == 4


def test_int_coercion_bounds():
    assert atoms.SHORT.coerce(32767) == 32767
    with pytest.raises(AtomError):
        atoms.SHORT.coerce(32768)
    with pytest.raises(AtomError):
        atoms.INT.coerce(2 ** 31)
    with pytest.raises(AtomError):
        atoms.OID.coerce(-1)


def test_bool_not_an_int():
    with pytest.raises(AtomError):
        atoms.INT.coerce(True)
    assert atoms.BOOL.coerce(np.bool_(True)) is True


def test_float_coercion():
    assert atoms.DOUBLE.coerce(3) == 3.0
    assert atoms.DOUBLE.coerce(np.float64(2.5)) == 2.5
    with pytest.raises(AtomError):
        atoms.DOUBLE.coerce("x")


def test_char_coercion():
    assert atoms.CHAR.coerce("R") == "R"
    with pytest.raises(AtomError):
        atoms.CHAR.coerce("RR")


def test_instant_round_trip():
    days = atoms.date_to_days("1998-09-02")
    assert atoms.days_to_date(days) == datetime.date(1998, 9, 2)
    assert atoms.INSTANT.coerce(datetime.date(1998, 9, 2)) == days
    assert atoms.INSTANT.coerce(days) == days
    assert atoms.INSTANT.fmt(days) == "1998-09-02"


def test_instant_epoch():
    assert atoms.date_to_days("1970-01-01") == 0


def test_bool_parse():
    assert atoms.BOOL.parse("true") is True
    assert atoms.BOOL.parse("F") is False
    with pytest.raises(AtomError):
        atoms.BOOL.parse("maybe")


def test_common_numeric_widening():
    assert atoms.common_numeric(atoms.INT, atoms.DOUBLE) is atoms.DOUBLE
    assert atoms.common_numeric(atoms.SHORT, atoms.INT) is atoms.INT
    assert atoms.common_numeric(atoms.LONG, atoms.FLOAT) is atoms.FLOAT
    with pytest.raises(AtomError):
        atoms.common_numeric(atoms.STRING, atoms.INT)


def test_is_numeric():
    assert atoms.is_numeric(atoms.DOUBLE)
    assert not atoms.is_numeric(atoms.STRING)
    assert not atoms.is_numeric(atoms.INSTANT)


def test_runtime_extensibility():
    # section 2: base types can be added via the ADT mechanism
    name = "test_only_point"
    if name not in atoms.ATOMS:
        atoms.register_atom(atoms.Atom(
            name, np.float64, 8, float, lambda v: float(v), str))
    assert atoms.atom(name).width == 8
    with pytest.raises(AtomError):
        atoms.register_atom(atoms.Atom(
            name, np.float64, 8, float, lambda v: float(v), str))
