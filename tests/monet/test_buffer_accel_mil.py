"""Buffer manager (paging simulation), accelerators, MIL, kernel."""

import pytest

from repro.errors import CatalogError, MILError
from repro.monet import (BufferManager, MILInterpreter, MILProgram,
                         MonetKernel, Var, bat_from_pairs, compute_props,
                         use)
from repro.monet import operators as ops
from repro.monet.heap import FixedHeap


# ----------------------------------------------------------------------
# buffer manager
# ----------------------------------------------------------------------
def _persistent_heap(nbytes):
    import numpy as np
    heap = FixedHeap(np.zeros(nbytes // 4, dtype=np.int32), 4)
    heap.persistent = True
    return heap


def test_sequential_access_faults_once():
    manager = BufferManager(page_size=4096)
    heap = _persistent_heap(4096 * 10)
    manager.access_heap(heap)
    assert manager.faults == 10
    manager.access_heap(heap)          # warm: all hits
    assert manager.faults == 10
    assert manager.hits == 10


def test_cold_restart():
    manager = BufferManager(page_size=4096)
    heap = _persistent_heap(4096 * 4)
    manager.access_heap(heap)
    manager.evict_all()
    manager.access_heap(heap)
    assert manager.faults == 8


def test_positions_dedup_pages():
    manager = BufferManager(page_size=4096)
    heap = _persistent_heap(4096 * 100)
    # 1024 int32 entries per page; touch three entries on one page
    manager.access_positions(heap, [0, 1, 2], 4)
    assert manager.faults == 1
    manager.access_positions(heap, [5000], 4)
    assert manager.faults == 2


def test_transient_heaps_do_not_fault_on_first_touch():
    manager = BufferManager(page_size=4096)
    import numpy as np
    heap = FixedHeap(np.zeros(4096, dtype=np.int32), 4)   # transient
    manager.access_heap(heap)
    assert manager.faults == 0


def test_memory_budget_spills_and_refaults():
    manager = BufferManager(page_size=4096, memory_pages=4)
    import numpy as np
    transient = FixedHeap(np.zeros(8 * 1024, dtype=np.int32), 4)
    manager.access_heap(transient)       # 8 pages through a 4-page buffer
    assert manager.faults == 0
    assert manager.evictions >= 4
    # the early pages were spilled: touching them again faults now
    manager.access_positions(transient, [0], 4)
    assert manager.faults == 1


def test_evict_heap_spills_transients_regression():
    """Q1's "save intermediate results to disk": an explicitly evicted
    transient heap must *fault* when re-touched, exactly like pages
    evicted under memory pressure — it used to be dropped from the
    resident set without joining the spill set, making the re-read
    free."""
    import numpy as np
    manager = BufferManager(page_size=4096)
    transient = FixedHeap(np.zeros(4 * 1024, dtype=np.int32), 4)
    manager.access_heap(transient)       # fresh intermediate: writes
    assert manager.faults == 0
    manager.evict_heap(transient)
    assert manager.evictions == 4
    manager.access_heap(transient)       # re-read after the spill
    assert manager.faults == 4


def test_evict_heap_only_targets_one_heap():
    import numpy as np
    manager = BufferManager(page_size=4096)
    victim = FixedHeap(np.zeros(2 * 1024, dtype=np.int32), 4)
    bystander = _persistent_heap(4096 * 2)
    manager.access_heap(victim)
    manager.access_heap(bystander)
    faults = manager.faults
    manager.evict_heap(victim)
    manager.access_heap(bystander)       # still resident: hits only
    assert manager.faults == faults
    assert manager.hits == 2
    manager.access_heap(victim)          # spilled: faults back in
    assert manager.faults == faults + 2


def test_chunked_position_accounting_no_double_charge():
    """Per-chunk gathers of one parallel operator are unioned before
    touching: pages shared between chunk ranges are charged once, and
    the trace equals the serial (merged) gather's."""
    import numpy as np
    chunks = [np.arange(0, 1024), np.arange(512, 2048)]   # overlap
    chunked = BufferManager(page_size=4096)
    heap = _persistent_heap(4096 * 8)
    chunked.access_positions_chunks(heap, chunks, 4)
    assert chunked.faults == 2           # pages {0, 1}, page 0 shared
    assert chunked.hits == 0             # ... but charged exactly once

    merged = BufferManager(page_size=4096)
    merged.access_positions(heap, np.concatenate(chunks), 4)
    assert (chunked.faults, chunked.hits) == (merged.faults,
                                              merged.hits)


def test_operator_attribution():
    manager = BufferManager(page_size=4096)
    heap = _persistent_heap(4096 * 3)
    with manager.operator("scan"):
        manager.access_heap(heap)
    assert manager.op_faults["scan"] == 3


def test_disabled_manager_is_noop():
    manager = BufferManager(enabled=False)
    heap = _persistent_heap(4096 * 3)
    manager.access_heap(heap)
    assert manager.faults == 0


def test_use_context_restores():
    from repro.monet.buffer import get_manager
    outer = get_manager()
    inner = BufferManager()
    with use(inner):
        assert get_manager() is inner
    assert get_manager() is outer


# ----------------------------------------------------------------------
# accelerators
# ----------------------------------------------------------------------
def test_datavector_semijoin_and_lookup_cache():
    kernel = MonetKernel()
    oids = list(range(100))
    kernel.bulk_load("T_a", "oid", oids, "int",
                     [i * 3 % 17 for i in oids], group="T")
    kernel.bulk_load("T_b", "oid", oids, "int",
                     [i * 5 % 13 for i in oids], group="T")
    kernel.create_extent("T", "T_a")
    kernel.create_datavectors("T", ["T_a", "T_b"])
    kernel.reorder_on_tail(["T_a", "T_b"])

    selection = bat_from_pairs("oid", "int", [(5, 0), (50, 0), (99, 0)])
    selection.props = compute_props(selection)

    out = ops.semijoin(kernel.get("T_a"), selection)
    from repro.monet.optimizer import get_optimizer
    assert get_optimizer().last["semijoin"] == "datavectorsemijoin"
    assert dict(out.to_pairs()) == {5: 15 % 17, 50: 150 % 17,
                                    99: 297 % 17}
    registry = kernel.registries["T"]
    computed = registry.lookups_computed
    ops.semijoin(kernel.get("T_b"), selection)
    assert registry.lookups_computed == computed       # cached
    assert registry.lookups_reused >= 1


def test_datavector_results_synced_across_attributes():
    from repro.monet.properties import synced
    kernel = MonetKernel()
    oids = list(range(50))
    kernel.bulk_load("S_x", "oid", oids, "double",
                     [float(i) for i in oids], group="S")
    kernel.bulk_load("S_y", "oid", oids, "double",
                     [float(i * i) for i in oids], group="S")
    kernel.create_extent("S", "S_x")
    kernel.create_datavectors("S", ["S_x", "S_y"])
    kernel.reorder_on_tail(["S_x", "S_y"])
    selection = bat_from_pairs("oid", "int", [(7, 0), (13, 0)])
    selection.props = compute_props(selection)
    x = ops.semijoin(kernel.get("S_x"), selection)
    y = ops.semijoin(kernel.get("S_y"), selection)
    assert synced(x, y)
    product = ops.multiplex("*", x, y)
    assert dict(product.to_pairs()) == {7: 7.0 * 49.0, 13: 13.0 * 169.0}


def test_hash_index():
    from repro.monet.accelerators.hashidx import hash_index
    from repro.monet.column import column_from_values
    col = column_from_values("int", [5, 7, 5, 9])
    index = hash_index(col)
    assert list(index.positions(5)) == [0, 2]
    assert index.first(9) == 3
    assert index.positions(42) == ()


# ----------------------------------------------------------------------
# kernel catalog
# ----------------------------------------------------------------------
def test_kernel_catalog():
    kernel = MonetKernel()
    kernel.bulk_load("X", "oid", [1, 2], "int", [10, 20])
    assert "X" in kernel
    assert kernel.get("X").to_pairs() == [(1, 10), (2, 20)]
    with pytest.raises(CatalogError):
        kernel.bulk_load("X", "oid", [1], "int", [1])
    with pytest.raises(CatalogError):
        kernel.get("missing")
    kernel.drop("X")
    assert "X" not in kernel


def test_bulk_load_sets_properties():
    kernel = MonetKernel()
    bat = kernel.bulk_load("Y", "oid", [1, 2, 3], "int", [5, 5, 7])
    assert bat.props.hkey and bat.props.hordered and bat.props.tordered
    assert not bat.props.tkey


def test_load_group_sync():
    from repro.monet.properties import synced
    kernel = MonetKernel()
    a = kernel.bulk_load("G_a", "oid", [1, 2], "int", [1, 2], group="G")
    b = kernel.bulk_load("G_b", "oid", [1, 2], "int", [3, 4], group="G")
    assert synced(a, b)


# ----------------------------------------------------------------------
# MIL
# ----------------------------------------------------------------------
def test_mil_program_and_interpreter():
    kernel = MonetKernel()
    kernel.bulk_load("Order_clerk", "oid", [100, 101, 102], "string",
                     ["a", "b", "a"])
    program = MILProgram()
    orders = program.emit("select", [Var("Order_clerk"), "a"],
                          target="orders")
    program.emit("mirror", [orders], target="m")
    program.emit("aggr_all", [orders], fn="count", target="n")
    interpreter = MILInterpreter(kernel)
    trace = interpreter.run(program, trace=True)
    assert interpreter.value("orders").to_pairs() == [(100, "a"),
                                                      (102, "a")]
    assert interpreter.value("n") == 2
    assert len(trace.rows) == 3
    assert "select" in trace.rows[0].text


def test_mil_render():
    program = MILProgram()
    program.emit("select", [Var("B"), "x"], target="t")
    program.emit("multiplex", [Var("t")], fn="year", target="y")
    program.emit("aggr", [Var("y")], fn="sum", target="s")
    text = program.render()
    assert 't := select(B, "x")' in text
    assert "y := [year](t)" in text
    assert "s := {sum}(y)" in text


def test_mil_unknown_op_and_unbound_var():
    kernel = MonetKernel()
    program = MILProgram()
    program.emit("warp", [Var("nope")])
    with pytest.raises(MILError):
        MILInterpreter(kernel).run(program)
    program2 = MILProgram()
    program2.emit("mirror", [Var("nope")])
    with pytest.raises(MILError):
        MILInterpreter(kernel).run(program2)


def test_mil_trace_format():
    kernel = MonetKernel()
    kernel.bulk_load("B", "oid", [1], "int", [1])
    program = MILProgram()
    program.emit("mirror", [Var("B")])
    trace = MILInterpreter(kernel).run(program, trace=True)
    table = trace.format_table()
    assert "MIL statement" in table
    assert "mirror(B)" in table
