"""Property-based tests: Figure 4 set-comprehension specs.

Hypothesis generates small random BATs; every operator result is
compared against the paper's declarative definition, and the property
flags declared on the result are re-verified against the data (a
falsely declared property would silently corrupt dynamic dispatch).
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.monet import bat_from_pairs, compute_props, verify
from repro.monet import operators as ops

_pairs = st.lists(st.tuples(st.integers(0, 20), st.integers(0, 20)),
                  max_size=30)
_small = st.integers(0, 20)


def _bat(pairs):
    bat = bat_from_pairs("oid", "int", pairs)
    bat.props = compute_props(bat)
    return bat


@settings(max_examples=60, deadline=None)
@given(_pairs, _small, _small)
def test_select_spec(pairs, lo, hi):
    bat = _bat(pairs)
    out = ops.select_range(bat, lo, hi)
    expected = [ab for ab in pairs if lo <= ab[1] <= hi]
    assert out.to_pairs() == expected
    verify(out)


@settings(max_examples=60, deadline=None)
@given(_pairs, _small)
def test_select_eq_spec(pairs, value):
    bat = _bat(pairs)
    out = ops.select_eq(bat, value)
    assert out.to_pairs() == [ab for ab in pairs if ab[1] == value]
    verify(out)


@settings(max_examples=60, deadline=None)
@given(_pairs, _pairs)
def test_join_spec(left_pairs, right_pairs):
    ab = _bat(left_pairs)
    cd = _bat(right_pairs)
    out = ops.join(ab, cd)
    expected = sorted((a, d) for a, b in left_pairs
                      for c, d in right_pairs if b == c)
    assert sorted(out.to_pairs()) == expected
    verify(out)


@settings(max_examples=60, deadline=None)
@given(_pairs, _pairs)
def test_semijoin_spec(left_pairs, right_pairs):
    ab = _bat(left_pairs)
    cd = _bat(right_pairs)
    out = ops.semijoin(ab, cd)
    heads = {c for c, _d in right_pairs}
    assert out.to_pairs() == [ab_ for ab_ in left_pairs
                              if ab_[0] in heads]
    verify(out)


@settings(max_examples=60, deadline=None)
@given(_pairs, _pairs)
def test_semijoin_antijoin_partition(left_pairs, right_pairs):
    ab = _bat(left_pairs)
    cd = _bat(right_pairs)
    semi = ops.semijoin(ab, cd).to_pairs()
    anti = ops.antijoin(ab, cd).to_pairs()
    assert len(semi) + len(anti) == len(left_pairs)
    assert sorted(semi + anti) == sorted(left_pairs)


@settings(max_examples=60, deadline=None)
@given(_pairs)
def test_unique_spec(pairs):
    bat = bat_from_pairs("oid", "int", pairs)
    out = ops.unique(bat)
    seen = []
    for pair in pairs:
        if pair not in seen:
            seen.append(pair)
    assert out.to_pairs() == seen
    # idempotence
    assert ops.unique(out).to_pairs() == seen


@settings(max_examples=60, deadline=None)
@given(_pairs)
def test_group_spec(pairs):
    bat = _bat(pairs)
    out = ops.group1(bat)
    assert len(out) == len(bat)
    gid_of = {}
    for (a, b), (a2, gid) in zip(pairs, out.to_pairs()):
        assert a == a2
        if b in gid_of:
            assert gid_of[b] == gid
        else:
            gid_of[b] = gid
    # distinct values got distinct group oids
    assert len(set(gid_of.values())) == len(gid_of)


@settings(max_examples=60, deadline=None)
@given(_pairs)
def test_set_aggregate_spec(pairs):
    bat = bat_from_pairs("oid", "int", pairs)
    out = dict(ops.set_aggregate("sum", bat).to_pairs())
    expected = {}
    for a, b in pairs:
        expected[a] = expected.get(a, 0) + b
    assert out == expected


@settings(max_examples=60, deadline=None)
@given(_pairs, _pairs)
def test_setops_specs(left_pairs, right_pairs):
    ab = bat_from_pairs("oid", "int", left_pairs)
    cd = bat_from_pairs("oid", "int", right_pairs)
    union = ops.union(ab, cd).to_pairs()
    assert set(union) == set(left_pairs) | set(right_pairs)
    assert len(union) == len(set(union))
    diff = ops.difference(ab, cd).to_pairs()
    assert set(diff) == {p for p in left_pairs
                         if p not in set(right_pairs)}
    inter = ops.intersection(ab, cd).to_pairs()
    assert set(inter) == set(left_pairs) & set(right_pairs)


@settings(max_examples=60, deadline=None)
@given(_pairs)
def test_mirror_involution(pairs):
    bat = _bat(pairs)
    assert bat.mirror().mirror().to_pairs() == pairs
    assert bat.mirror().to_pairs() == [(b, a) for a, b in pairs]


@settings(max_examples=60, deadline=None)
@given(_pairs)
def test_sort_is_permutation_and_ordered(pairs):
    bat = bat_from_pairs("oid", "int", pairs)
    out = ops.sort_tail(bat)
    assert sorted(out.to_pairs()) == sorted(pairs)
    tails = [p[1] for p in out.to_pairs()]
    assert tails == sorted(tails)
    verify(out)


@settings(max_examples=40, deadline=None)
@given(_pairs, _small, _small)
def test_select_conjunction_is_range_intersection(pairs, lo, hi):
    # select(lo..) then select(..hi) == select(lo..hi)
    bat = _bat(pairs)
    stepwise = ops.select_range(ops.select_range(bat, lo, None),
                                None, hi)
    direct = ops.select_range(bat, lo, hi)
    assert stepwise.to_pairs() == direct.to_pairs()
