"""Heaps, columns (incl. void), and the BAT structure itself."""

import numpy as np
import pytest

from repro.errors import BATError
from repro.monet import (BAT, FixedColumn, VarColumn, VoidColumn,
                         bat_from_pairs, column_from_values, compute_props,
                         concat_bats, empty_bat)
from repro.monet.column import concat_columns, equality_keys
from repro.monet.heap import VarHeap


# ----------------------------------------------------------------------
# heaps
# ----------------------------------------------------------------------
def test_var_heap_dedups():
    heap = VarHeap()
    a = heap.insert("hello")
    b = heap.insert("world")
    c = heap.insert("hello")
    assert a == c != b
    assert len(heap) == 2


def test_var_heap_decode():
    heap = VarHeap()
    idx = heap.insert_many(["x", "y", "x", "z"])
    assert list(heap.decode(idx)) == ["x", "y", "x", "z"]
    assert heap.decode_one(idx[1]) == "y"


def test_var_heap_sorted_order_cached_and_invalidated():
    heap = VarHeap()
    heap.insert_many(["b", "a", "c"])
    order, rank = heap.sorted_order()
    assert [heap.values[i] for i in order] == ["a", "b", "c"]
    assert heap.sorted_order() is heap.sorted_order()
    heap.insert("aa")
    order2, _rank2 = heap.sorted_order()
    assert [heap.values[i] for i in order2] == ["a", "aa", "b", "c"]


def test_var_heap_nbytes_counts_bodies():
    heap = VarHeap()
    heap.insert("abcd")
    before = heap.nbytes
    heap.insert("abcd")      # duplicate: no growth
    assert heap.nbytes == before


# ----------------------------------------------------------------------
# columns
# ----------------------------------------------------------------------
def test_fixed_column_basics():
    col = column_from_values("int", [3, 1, 2])
    assert isinstance(col, FixedColumn)
    assert len(col) == 3
    assert col.value(0) == 3
    assert list(col.take([2, 0]).logical()) == [2, 3]
    assert list(col.slice(1, 3).logical()) == [1, 2]
    assert col.width == 4


def test_var_column_basics():
    col = column_from_values("string", ["b", "a", "b"])
    assert isinstance(col, VarColumn)
    assert list(col.logical()) == ["b", "a", "b"]
    assert col.value(1) == "a"
    assert col.encode("a") is not None
    assert col.encode("zz") is None
    # order keys sort like the values
    ranks = col.order_keys()
    assert ranks[1] < ranks[0]


def test_void_column():
    col = VoidColumn(10, 4)
    assert list(col.logical()) == [10, 11, 12, 13]
    assert col.value(2) == 12
    assert col.width == 0 and col.nbytes == 0
    assert col.is_void()
    sliced = col.slice(1, 3)
    assert list(sliced.logical()) == [11, 12]
    taken = col.take(np.array([3, 0]))
    assert list(taken.logical()) == [13, 10]
    with pytest.raises(IndexError):
        col.value(4)


def test_column_atom_mismatch():
    with pytest.raises(BATError):
        FixedColumn("string", np.array([1]))
    with pytest.raises(BATError):
        VarColumn.from_values("int", [1])


def test_equality_keys_across_heaps():
    left = column_from_values("string", ["a", "b", "c"])
    right = column_from_values("string", ["c", "x", "a"])
    lk, rk = equality_keys(left, right)
    assert lk[0] == rk[2]          # "a"
    assert lk[2] == rk[0]          # "c"
    assert rk[1] == -1             # "x" not in left heap


def test_concat_columns_strings():
    a = column_from_values("string", ["x", "y"])
    b = column_from_values("string", ["y", "z"])
    merged = concat_columns([a, b])
    assert list(merged.logical()) == ["x", "y", "y", "z"]


# ----------------------------------------------------------------------
# BATs
# ----------------------------------------------------------------------
def test_bat_construction_and_signature():
    bat = bat_from_pairs("oid", "string", [(1, "a"), (2, "b")])
    assert bat.signature() == "[oid,string]"
    assert len(bat) == 2
    assert bat.to_pairs() == [(1, "a"), (2, "b")]
    assert bat.bun(1) == (2, "b")


def test_bat_length_mismatch():
    with pytest.raises(BATError):
        BAT(column_from_values("int", [1]),
            column_from_values("int", [1, 2]))


def test_mirror_is_free_and_involutive():
    bat = bat_from_pairs("oid", "int", [(1, 10), (2, 20)])
    bat.props = compute_props(bat)
    mirrored = bat.mirror()
    assert mirrored.to_pairs() == [(10, 1), (20, 2)]
    assert mirrored.head is bat.tail and mirrored.tail is bat.head
    assert mirrored.mirror() is bat
    # properties swap
    assert mirrored.props.hkey == bat.props.tkey
    assert mirrored.props.tordered == bat.props.hordered


def test_mirror_alignment_involution():
    bat = bat_from_pairs("oid", "int", [(1, 10)])
    assert bat.mirror().mirror().alignment == bat.alignment


def test_empty_bat():
    bat = empty_bat("oid", "double")
    assert len(bat) == 0
    assert bat.props.hkey and bat.props.tordered


def test_concat_bats():
    a = bat_from_pairs("oid", "int", [(1, 10)])
    b = bat_from_pairs("oid", "int", [(2, 20)])
    merged = concat_bats([a, b])
    assert merged.to_pairs() == [(1, 10), (2, 20)]


def test_append_guards_properties():
    bat = bat_from_pairs("oid", "int", [(1, 10), (2, 20)])
    bat.props = compute_props(bat)
    assert bat.props.hordered and bat.props.hkey
    grown = bat.append(3, 30)
    assert grown.props.hordered and grown.props.hkey
    # appending a duplicate, out-of-order head switches the flags off
    broken = grown.append(2, 40)
    assert not broken.props.hordered
    assert not broken.props.hkey
    assert len(broken) == 4


def test_bat_nbytes_counts_shared_heaps_once():
    col = column_from_values("int", [1, 2, 3])
    bat = BAT(col, col)
    assert bat.nbytes == col.nbytes
