"""Multi-process dispatcher: fan-out equality, shipping, partitioning.

Workers reopen one saved TPC-D db_dir (zero-copy mmap, per-process
BufferManager, pinned catalog generation) and the parent asserts their
shipped sha1 checksums against serial execution of the same queries
and MIL programs.
"""

import multiprocessing
import os
import pickle
import signal

import pytest

from repro.errors import (MILError, QueryTimeoutError,
                          StaleCatalogError, WorkerCrashedError)
from repro.monet import (MILProgram, MonetKernel, MultiprocExecutor,
                         Var, partition_independent, result_checksum,
                         run_program_serial, ship_value)
from repro.monet.multiproc import run_queries_multiproc
from repro.tpcd import QUERIES, load_tpcd, open_tpcd

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()
pytestmark = pytest.mark.skipif(
    not HAVE_FORK, reason="multi-process tests need the fork start "
                          "method (spawn re-imports per worker, too "
                          "slow for tier-1)")

#: a representative query slice: scan+group (1), join chain (3),
#: scalar aggregate (6), multiplex chain (13)
QUERY_SLICE = (1, 3, 6, 13)


@pytest.fixture(scope="module")
def db_dir(tiny_tpcd, tmp_path_factory):
    path = tmp_path_factory.mktemp("mpdb") / "db"
    load_tpcd(tiny_tpcd, db_dir=path)
    return path


@pytest.fixture(scope="module")
def executor(db_dir):
    with MultiprocExecutor(db_dir, procs=2) as pool:
        yield pool


@pytest.fixture(scope="module")
def serial_db(db_dir):
    db, report = open_tpcd(db_dir)
    assert report.warm
    return db


# ----------------------------------------------------------------------
# query fan-out
# ----------------------------------------------------------------------
def test_queries_match_serial_checksums(executor, serial_db):
    outcomes = executor.run_queries(QUERY_SLICE)
    assert sorted(outcomes) == sorted(QUERY_SLICE)
    for number in QUERY_SLICE:
        serial = result_checksum(
            ship_value(QUERIES[number].run(serial_db)))
        assert outcomes[number].checksum == serial, "Q%d" % number


def test_outcomes_report_worker_provenance(executor, db_dir):
    import os
    outcomes = executor.run_queries((6, 12))
    for outcome in outcomes.values():
        assert outcome.pid != os.getpid()          # really off-process
        assert outcome.generation == executor.generation == 1
        assert outcome.elapsed_ms >= 0.0
        # the per-process manager accounted the run (faults on a cold
        # worker, hits once the resident set warmed across tasks)
        assert outcome.stats.faults + outcome.stats.hits > 0


def test_inline_payload_roundtrip(executor, serial_db):
    outcome = executor.run_queries((6,))[6]
    shipped = outcome.value()
    assert shipped["kind"] == "value"
    assert shipped["value"] == pytest.approx(QUERIES[6].run(serial_db))
    assert result_checksum(shipped) == outcome.checksum


def test_merged_stats_accumulate(executor):
    outcomes = executor.run_queries(QUERY_SLICE)
    total = MultiprocExecutor.merged_stats(outcomes)
    assert total.faults == sum(outcome.stats.faults
                               for outcome in outcomes.values())
    assert total.as_dict()["faults"] == total.faults


def test_run_queries_accepts_any_iterable(executor):
    outcomes = executor.run_queries(iter((6, 12)))
    assert sorted(outcomes) == [6, 12]           # iterator not eaten


def test_run_queries_multiproc_convenience(db_dir, serial_db):
    outcomes = run_queries_multiproc(db_dir, numbers=(6,), procs=2)
    serial = result_checksum(ship_value(QUERIES[6].run(serial_db)))
    assert outcomes[6].checksum == serial


# ----------------------------------------------------------------------
# result files
# ----------------------------------------------------------------------
def test_file_shipping_roundtrip(db_dir, tmp_path, serial_db):
    with MultiprocExecutor(db_dir, procs=2, ship="file",
                           result_dir=tmp_path) as pool:
        outcomes = pool.run_queries((3, 6))
        # a later round must not overwrite the first round's files:
        # the retained outcomes still verify after the re-run
        pool.run_queries((3, 6))
    for number, outcome in outcomes.items():
        mode, path = outcome.payload
        assert mode == "file"
        assert str(path).startswith(str(tmp_path))
        shipped = outcome.value()                  # verifies the sha1
        assert result_checksum(shipped) == outcome.checksum
        serial = result_checksum(
            ship_value(QUERIES[number].run(serial_db)))
        assert outcome.checksum == serial


def test_file_shipping_detects_corruption(db_dir, tmp_path):
    with MultiprocExecutor(db_dir, procs=1, ship="file",
                           result_dir=tmp_path) as pool:
        outcome = pool.run_queries((6,))[6]
    _mode, path = outcome.payload
    with open(path, "wb") as handle:
        pickle.dump({"kind": "value", "value": -1.0}, handle)
    with pytest.raises(MILError):
        outcome.value()
    assert outcome.value(verify=False) == {"kind": "value",
                                           "value": -1.0}


# ----------------------------------------------------------------------
# MIL programs
# ----------------------------------------------------------------------
def _two_chain_program():
    program = MILProgram()
    selected = program.emit("select", [Var("Item_quantity"), 10, 40])
    joined = program.emit("join", [selected,
                                   Var("Item_extendedprice")])
    program.emit("aggr_all", [joined], fn="sum", target="total")
    program.emit("group", [Var("Item_order")], target="groups")
    return program


def test_partition_independent_structure():
    program = _two_chain_program()
    parts = partition_independent(program)
    assert [len(part) for part in parts] == [3, 1]
    assert parts[0].defined_vars()[-1] == "total"
    assert parts[1].defined_vars() == ["groups"]
    # catalog-only references never connect statements
    assert sum(len(part) for part in parts) == len(program)


def test_partition_redefinition_stays_ordered():
    program = MILProgram()
    program.emit("select", [Var("Item_quantity"), 10, 40], target="x")
    program.emit("select", [Var("Item_quantity"), 0, 5], target="x")
    program.emit("ident", [Var("x")], target="y")
    parts = partition_independent(program)
    # write-after-write + read keep all three statements together,
    # in original order
    assert len(parts) == 1
    assert [stmt.target for stmt in parts[0]] == ["x", "x", "y"]


def test_run_programs_match_serial(executor, db_dir):
    program = _two_chain_program()
    kernel = MonetKernel.open(db_dir)
    env, checksum = run_program_serial(kernel, program,
                                       ["total", "groups"])
    outcomes = executor.run_programs([(program, ["total", "groups"])])
    assert outcomes[0].checksum == checksum
    assert outcomes[0].value().keys() == env.keys()


def test_run_partitioned_matches_serial(executor, db_dir):
    program = _two_chain_program()
    kernel = MonetKernel.open(db_dir)
    env_serial, checksum = run_program_serial(kernel, program,
                                              ["total", "groups"])
    env, outcomes = executor.run_partitioned(program,
                                             ["total", "groups"])
    assert result_checksum(env) == checksum
    assert env["total"]["value"] == env_serial["total"]["value"]
    assert len(outcomes) == 2


def test_run_partitioned_unknown_fetch_raises(executor):
    with pytest.raises(MILError):
        executor.run_partitioned(_two_chain_program(), ["nonsense"])


# ----------------------------------------------------------------------
# generation pinning across the fleet
# ----------------------------------------------------------------------
def test_workers_reject_mismatched_generation(db_dir):
    with pytest.raises(StaleCatalogError):
        with MultiprocExecutor(db_dir, procs=1,
                               expected_generation=99) as pool:
            pool.run_queries((6,))


def test_open_tpcd_pin_binds_preopened_kernels(db_dir):
    """The generation pin must hold even when a cached kernel is
    wrapped instead of freshly opened."""
    kernel = MonetKernel.open(db_dir)
    with pytest.raises(StaleCatalogError):
        open_tpcd(db_dir, expected_generation=kernel.generation + 1,
                  kernel=kernel)
    db, _report = open_tpcd(db_dir,
                            expected_generation=kernel.generation,
                            kernel=kernel)
    assert db.kernel is kernel


# ----------------------------------------------------------------------
# warm pool: async submit, crash handling, timeouts, task registry
# ----------------------------------------------------------------------
def test_submit_returns_pending_task(executor, serial_db):
    pending = executor.submit(("query", "qasync", 6, None))
    outcome = pending.result(timeout=60)
    assert pending.done()
    serial = result_checksum(ship_value(QUERIES[6].run(serial_db)))
    assert outcome.checksum == serial
    assert pending.pid in executor.worker_pids()


def test_unknown_task_kind_raises_without_killing_pool(executor):
    with pytest.raises(MILError):
        executor.submit(("nonsense", "x")).result(timeout=60)
    # the worker survived the failing task
    assert executor.run_queries((6,))[6].checksum


def test_idle_worker_death_respawns_transparently(db_dir):
    with MultiprocExecutor(db_dir, procs=1) as pool:
        pool.run_queries((6,))                   # worker warm
        [pid] = pool.worker_pids()
        os.kill(pid, signal.SIGKILL)
        pool._workers[0].process.join(timeout=10)  # observe the death
        # the task never started on the dead worker, so it is retried
        # on the replacement instead of surfacing an error
        outcome = pool.run_queries((6,))[6]
        assert outcome.pid != pid
        assert pool.respawns == 1
        assert pool.crashes == 0


def test_midtask_crash_surfaces_typed_error_and_respawns(db_dir):
    with MultiprocExecutor(db_dir, procs=1) as pool:
        pool.run_queries((6,))                   # catalog mapped
        [pid] = pool.worker_pids()
        pending = pool.submit(("query", "qcrash", 13, None))
        assert pending.dispatched.wait(30)
        os.kill(pid, signal.SIGKILL)
        with pytest.raises(WorkerCrashedError):
            pending.result(timeout=60)
        assert pool.crashes == 1
        # the pool keeps serving through the respawned worker
        outcome = pool.run_queries((6,))[6]
        assert outcome.pid != pid


def test_timeout_kills_overdue_worker_and_recovers(db_dir, serial_db):
    with MultiprocExecutor(db_dir, procs=1) as pool:
        pool.run_queries((6,))
        [pid] = pool.worker_pids()
        with pytest.raises(QueryTimeoutError):
            pool.submit(("query", "qslow", 13, None),
                        timeout=0.0001).result(timeout=60)
        assert pool.timeouts == 1
        assert pool.worker_pids() != [pid]
        outcome = pool.run_queries((13,))[13]
        serial = result_checksum(ship_value(QUERIES[13].run(serial_db)))
        assert outcome.checksum == serial


def test_registered_moa_task_kind_with_plan_cache(db_dir, serial_db):
    text = QUERIES[1].texts()[0]
    expected = result_checksum(
        ship_value(serial_db.query(text).rows))
    with MultiprocExecutor(
            db_dir, procs=1,
            task_modules=("repro.server.tasks",)) as pool:
        first = pool.submit(("moa", "m1", text)).result(timeout=120)
        second = pool.submit(("moa", "m2", text)).result(timeout=120)
    assert first.checksum == expected == second.checksum
    assert first.extra["plan_cached"] is False
    assert second.extra["plan_cached"] is True
    assert second.extra["plan_cache"]["hits"] == 1
    assert second.extra["plan_cache"]["misses"] == 1


# ----------------------------------------------------------------------
# checksum canon
# ----------------------------------------------------------------------
def test_result_checksum_distinguishes_types():
    import numpy as np
    from repro.moa.values import Ref, Row
    values = [None, True, 1, 1.0, "1", b"1",
              np.asarray([1, 2]), np.asarray([1.0, 2.0]),
              [1, 2], (1, (2,)), {"a": 1}, {"a": 2},
              Row([("a", 1)]), Row([("b", 1)]),
              Ref("Order", 1), Ref("Order", 2)]
    digests = [result_checksum(value) for value in values]
    assert len(set(digests)) == len(digests)
    # and is stable across calls (the multi-process contract)
    assert digests == [result_checksum(value) for value in values]


def test_result_checksum_rejects_unknown_types():
    with pytest.raises(TypeError):
        result_checksum(object())
