"""Figure 4 operator semantics, implementation dispatch, properties."""

import pytest

from repro.errors import OperatorError, PropertyError
from repro.monet import (bat_from_pairs, compute_props, dispatch_disabled,
                         get_optimizer, verify)
from repro.monet import operators as ops
from repro.monet.properties import synced


def _bat(pairs, head="oid", tail="int"):
    bat = bat_from_pairs(head, tail, pairs)
    bat.props = compute_props(bat)
    return bat


# ----------------------------------------------------------------------
# select
# ----------------------------------------------------------------------
def test_select_eq_spec():
    bat = _bat([(1, 5), (2, 7), (3, 5), (4, 9)])
    out = ops.select_eq(bat, 5)
    assert out.to_pairs() == [(1, 5), (3, 5)]
    verify(out)


def test_select_range_spec():
    bat = _bat([(1, 5), (2, 7), (3, 5), (4, 9)])
    out = ops.select_range(bat, 5, 7)
    assert out.to_pairs() == [(1, 5), (2, 7), (3, 5)]
    out = ops.select_range(bat, None, 6)
    assert out.to_pairs() == [(1, 5), (3, 5)]
    out = ops.select_range(bat, 8, None)
    assert out.to_pairs() == [(4, 9)]


def test_select_exclusive_bounds():
    bat = _bat([(1, 5), (2, 7), (3, 9)])
    out = ops.select_range(bat, 5, 9, low_inclusive=False,
                           high_inclusive=False)
    assert out.to_pairs() == [(2, 7)]


def test_select_binsearch_on_sorted():
    bat = _bat([(3, 1), (1, 2), (2, 2), (4, 5)])
    assert bat.props.tordered
    out = ops.select_eq(bat, 2)
    assert get_optimizer().last["select"] == "binsearch"
    assert out.to_pairs() == [(1, 2), (2, 2)]


def test_select_scan_on_unsorted():
    bat = _bat([(1, 9), (2, 2), (3, 5)])
    out = ops.select_range(bat, 3, 9)
    assert get_optimizer().last["select"] == "scan"
    assert out.to_pairs() == [(1, 9), (3, 5)]


def test_select_strings():
    bat = _bat([(1, "x"), (2, "y"), (3, "x")], tail="string")
    assert ops.select_eq(bat, "x").to_pairs() == [(1, "x"), (3, "x")]
    assert ops.select_eq(bat, "zz").to_pairs() == []


def test_select_string_range_prefix():
    bat = _bat([(1, "PROMO A"), (2, "STANDARD B"), (3, "PROMO C")],
               tail="string")
    out = ops.select_range(bat, "PROMO", "PROMO\xff")
    assert sorted(p[0] for p in out.to_pairs()) == [1, 3]


# ----------------------------------------------------------------------
# join
# ----------------------------------------------------------------------
def test_join_spec_projects_out_join_columns():
    ab = _bat([(1, 10), (2, 20), (3, 10)])
    cd = _bat([(10, "x"), (20, "y")], tail="string")
    out = ops.join(ab, cd)
    assert out.to_pairs() == [(1, "x"), (2, "y"), (3, "x")]
    verify(out)


def test_join_m_n():
    ab = _bat([(1, 10), (2, 10)])
    cd = bat_from_pairs("oid", "int", [(10, 7), (10, 8)])
    cd.props = compute_props(cd)
    out = ops.join(ab, cd)
    assert sorted(out.to_pairs()) == [(1, 7), (1, 8), (2, 7), (2, 8)]


def test_join_dispatch_merge_and_hash():
    ab = _bat([(1, 10), (2, 20)])
    sorted_cd = _bat([(10, 1), (20, 2)])
    ops.join(ab, sorted_cd)
    assert get_optimizer().last["join"] == "mergejoin"
    unsorted_cd = bat_from_pairs("oid", "int", [(20, 2), (10, 1)])
    unsorted_cd.props = compute_props(unsorted_cd)
    ops.join(ab, unsorted_cd)
    assert get_optimizer().last["join"] == "hashjoin"


def test_join_fetch_on_void_head():
    from repro.monet import bat_dense_head, column_from_values
    cd = bat_dense_head(column_from_values("string", ["a", "b", "c"]))
    ab = _bat([(7, 2), (8, 0), (9, 5)])
    out = ops.join(ab, cd)
    assert get_optimizer().last["join"] == "fetchjoin"
    assert out.to_pairs() == [(7, "c"), (8, "a")]


def test_join_total_match_is_synced_with_left():
    ab = _bat([(1, 10), (2, 20)])
    cd = _bat([(10, 5), (20, 6)])
    out = ops.join(ab, cd)
    assert synced(out, ab)


def test_pairjoin_multi_key():
    l1 = _bat([(1, 10), (2, 20), (3, 10)])
    l2 = _bat([(1, 5), (2, 5), (3, 6)])
    r1 = _bat([(7, 10), (8, 10)])
    r2 = _bat([(7, 5), (8, 6)])
    out = ops.pairjoin([l1, l2, r1, r2])
    assert sorted(out.to_pairs()) == [(1, 7), (3, 8)]


def test_pairjoin_arity_check():
    ab = _bat([(1, 1)])
    with pytest.raises(OperatorError):
        ops.pairjoin([ab])


# ----------------------------------------------------------------------
# semijoin / antijoin
# ----------------------------------------------------------------------
def test_semijoin_spec():
    ab = _bat([(1, 10), (2, 20), (3, 30)])
    cd = _bat([(1, 0), (3, 0)])
    out = ops.semijoin(ab, cd)
    assert out.to_pairs() == [(1, 10), (3, 30)]
    verify(out)


def test_antijoin_spec():
    ab = _bat([(1, 10), (2, 20), (3, 30)])
    cd = _bat([(1, 0), (3, 0)])
    out = ops.antijoin(ab, cd)
    assert out.to_pairs() == [(2, 20)]


def test_semijoin_sync_fast_path():
    ab = _bat([(1, 10), (2, 20)])
    out = ops.semijoin(ab, ab)
    assert get_optimizer().last["semijoin"] == "syncsemijoin"
    assert out.to_pairs() == ab.to_pairs()


def test_semijoin_merge_path():
    ab = _bat([(1, 10), (2, 20), (3, 30)])
    cd = _bat([(2, 0), (3, 0)])
    out = ops.semijoin(ab, cd)
    assert get_optimizer().last["semijoin"] == "mergesemijoin"
    assert out.to_pairs() == [(2, 20), (3, 30)]


def test_semijoin_hash_fallback_when_dispatch_off():
    ab = _bat([(1, 10), (2, 20)])
    cd = _bat([(2, 0)])
    with dispatch_disabled():
        out = ops.semijoin(ab, cd)
        assert get_optimizer().last["semijoin"] == "hashsemijoin"
    assert out.to_pairs() == [(2, 20)]


def test_two_semijoins_same_right_are_synced():
    # the prices/discount situation of the Q13 trace
    price = _bat([(1, 10), (2, 20), (3, 30)])
    disc = _bat([(1, 1), (2, 2), (3, 3)])
    disc.alignment = price.alignment      # same load group
    sel = _bat([(1, 0), (3, 0)])
    a = ops.semijoin(price, sel)
    b = ops.semijoin(disc, sel)
    assert synced(a, b)


# ----------------------------------------------------------------------
# unique / group
# ----------------------------------------------------------------------
def test_unique_spec():
    ab = bat_from_pairs("oid", "int",
                        [(1, 5), (1, 5), (2, 5), (1, 5)])
    out = ops.unique(ab)
    assert out.to_pairs() == [(1, 5), (2, 5)]


def test_unique_noop_on_key():
    ab = _bat([(1, 5), (2, 5)])
    out = ops.unique(ab)
    assert get_optimizer().last["unique"] == "noop"
    assert out.to_pairs() == ab.to_pairs()


def test_group_unary_spec():
    ab = _bat([(1, 5), (2, 7), (3, 5)])
    out = ops.group1(ab)
    pairs = dict(out.to_pairs())
    assert pairs[1] == pairs[3] != pairs[2]
    assert synced(out, ab)


def test_group_binary_refines():
    ab = _bat([(1, 5), (2, 5), (3, 7)])
    grp = ops.group1(ab)
    cd = _bat([(1, 1), (2, 2), (3, 1)])
    out = ops.group2(grp, cd)
    pairs = dict(out.to_pairs())
    # (5,1), (5,2), (7,1): all three distinct
    assert len({pairs[1], pairs[2], pairs[3]}) == 3


def test_group_binary_same_keys_stay_grouped():
    ab = _bat([(1, 5), (2, 5)])
    grp = ops.group1(ab)
    cd = _bat([(1, 9), (2, 9)])
    out = ops.group2(grp, cd)
    pairs = dict(out.to_pairs())
    assert pairs[1] == pairs[2]


# ----------------------------------------------------------------------
# multiplex
# ----------------------------------------------------------------------
def test_multiplex_synced_fast_path():
    a = _bat([(1, 2), (2, 3)], tail="double")
    b = _bat([(1, 10), (2, 20)], tail="double")
    b.alignment = a.alignment
    out = ops.multiplex("*", a, b)
    assert get_optimizer().last["multiplex"] == "synced"
    assert out.to_pairs() == [(1, 20.0), (2, 60.0)]


def test_multiplex_aligned_path():
    a = _bat([(1, 2), (2, 3)], tail="double")
    b = _bat([(2, 20), (1, 10)], tail="double")
    out = ops.multiplex("+", a, b)
    assert get_optimizer().last["multiplex"] == "aligned"
    assert sorted(out.to_pairs()) == [(1, 12.0), (2, 23.0)]


def test_multiplex_scalar_broadcast():
    d = _bat([(1, 0.1), (2, 0.2)], tail="double")
    out = ops.multiplex("-", 1.0, d)
    assert out.to_pairs() == [(1, 0.9), (2, 0.8)]


def test_multiplex_year():
    from repro.monet.atoms import date_to_days
    bat = _bat([(1, date_to_days("1995-03-05")),
                (2, date_to_days("1996-12-31"))], tail="instant")
    out = ops.multiplex("year", bat)
    assert out.to_pairs() == [(1, 1995), (2, 1996)]


def test_multiplex_string_predicates():
    bat = _bat([(1, "PROMO X"), (2, "STD Y")], tail="string")
    assert ops.multiplex("startswith", bat, "PROMO").to_pairs() \
        == [(1, True), (2, False)]
    assert ops.multiplex("contains", bat, "Y").to_pairs() \
        == [(1, False), (2, True)]


def test_multiplex_ifthenelse():
    cond = _bat([(1, True), (2, False)], tail="bool")
    out = ops.multiplex("ifthenelse", cond, 1, 0)
    assert out.to_pairs() == [(1, 1), (2, 0)]


def test_multiplex_unknown_function():
    bat = _bat([(1, 1)])
    with pytest.raises(OperatorError):
        ops.multiplex("frobnicate", bat)


def test_register_function():
    if "test_double_it" not in ops.function_names():
        ops.register_function("test_double_it", lambda a: a * 2,
                              lambda atoms_in: atoms_in[0], 1)
    bat = _bat([(1, 21)])
    assert ops.multiplex("test_double_it", bat).to_pairs() == [(1, 42)]


# ----------------------------------------------------------------------
# aggregates
# ----------------------------------------------------------------------
def test_set_aggregate_sum_avg_count():
    ab = bat_from_pairs("oid", "double",
                        [(1, 2.0), (1, 4.0), (2, 10.0)])
    assert ops.set_aggregate("sum", ab).to_pairs() == [(1, 6.0), (2, 10.0)]
    assert ops.set_aggregate("avg", ab).to_pairs() == [(1, 3.0), (2, 10.0)]
    assert ops.set_aggregate("count", ab).to_pairs() == [(1, 2), (2, 1)]


def test_set_aggregate_min_max_strings():
    ab = bat_from_pairs("oid", "string",
                        [(1, "pear"), (1, "apple"), (2, "kiwi")])
    assert ops.set_aggregate("min", ab).to_pairs() == [(1, "apple"),
                                                       (2, "kiwi")]
    assert ops.set_aggregate("max", ab).to_pairs() == [(1, "pear"),
                                                       (2, "kiwi")]


def test_set_aggregate_props():
    ab = bat_from_pairs("oid", "int", [(2, 1), (1, 2), (2, 3)])
    out = ops.set_aggregate("sum", ab)
    assert out.props.hkey and out.props.hordered
    assert out.to_pairs() == [(1, 2), (2, 4)]


def test_aggregate_all():
    ab = bat_from_pairs("oid", "int", [(1, 3), (2, 4), (3, 5)])
    assert ops.aggregate_all("sum", ab) == 12
    assert ops.aggregate_all("count", ab) == 3
    assert ops.aggregate_all("min", ab) == 3
    assert ops.aggregate_all("max", ab) == 5
    assert ops.aggregate_all("avg", ab) == 4.0


def test_aggregate_all_empty():
    from repro.monet import empty_bat
    bat = empty_bat("oid", "int")
    assert ops.aggregate_all("sum", bat) == 0
    assert ops.aggregate_all("count", bat) == 0
    assert ops.aggregate_all("min", bat) is None


def test_unknown_aggregate():
    ab = _bat([(1, 1)])
    with pytest.raises(OperatorError):
        ops.set_aggregate("median", ab)


# ----------------------------------------------------------------------
# set operations
# ----------------------------------------------------------------------
def test_union_difference_intersection():
    a = _bat([(1, 10), (2, 20)])
    b = _bat([(2, 20), (3, 30)])
    assert ops.union(a, b).to_pairs() == [(1, 10), (2, 20), (3, 30)]
    assert ops.difference(a, b).to_pairs() == [(1, 10)]
    assert ops.intersection(a, b).to_pairs() == [(2, 20)]


def test_setops_on_strings():
    a = _bat([(1, "x"), (2, "y")], tail="string")
    b = _bat([(3, "y")], tail="string")
    assert ops.intersection(a, b).to_pairs() == []
    # pair (2,"y") != (3,"y"): BUN-level semantics
    assert len(ops.union(a, b)) == 3


def test_kdiff():
    a = _bat([(1, 10), (2, 20)])
    b = _bat([(2, 99)])
    assert ops.kdiff(a, b).to_pairs() == [(1, 10)]


# ----------------------------------------------------------------------
# sort / slice / misc
# ----------------------------------------------------------------------
def test_sort_tail():
    bat = bat_from_pairs("oid", "int", [(1, 3), (2, 1), (3, 2)])
    out = ops.sort_tail(bat)
    assert out.to_pairs() == [(2, 1), (3, 2), (1, 3)]
    assert out.props.tordered
    out = ops.sort_tail(bat, ascending=False)
    assert [p[1] for p in out.to_pairs()] == [3, 2, 1]


def test_sort_head():
    bat = bat_from_pairs("oid", "int", [(3, 1), (1, 2), (2, 3)])
    out = ops.sort_head(bat)
    assert [p[0] for p in out.to_pairs()] == [1, 2, 3]


def test_sort_positions_multi_key():
    from repro.monet.column import column_from_values
    a = column_from_values("int", [1, 1, 2])
    b = column_from_values("string", ["z", "a", "m"])
    order = ops.sort_positions([a, b], [False, True])
    assert list(order) == [0, 1, 2]
    order = ops.sort_positions([a, b], [False, False])
    assert list(order) == [1, 0, 2]


def test_slice():
    bat = _bat([(1, 1), (2, 2), (3, 3)])
    assert ops.slice_bunches(bat, 0, 2).to_pairs() == [(1, 1), (2, 2)]
    assert ops.slice_bunches(bat, 2, 99).to_pairs() == [(3, 3)]


def test_mark_number_ident():
    bat = _bat([(5, 50), (6, 60)])
    marked = ops.mark(bat, 100)
    assert marked.to_pairs() == [(5, 100), (6, 101)]
    numbered = ops.number(bat)
    assert numbered.to_pairs() == [(0, 50), (1, 60)]
    identical = ops.ident(bat)
    assert identical.to_pairs() == [(5, 5), (6, 6)]


def test_count_exist_fetch():
    bat = _bat([(1, 10), (2, 20)])
    assert ops.count(bat) == 2
    assert ops.exist(bat, 20)
    assert not ops.exist(bat, 30)
    assert ops.fetch(bat, 1) == (2, 20)


def test_verify_catches_false_props():
    bat = bat_from_pairs("oid", "int", [(2, 1), (1, 2)])
    bat.props.hordered = True
    with pytest.raises(PropertyError):
        verify(bat)
