"""Chunked parallel kernel execution (repro.monet.parallel).

Three contracts under test:

* the chunk *plan* partitions the position range, is gated by the size
  threshold, and never depends on the worker count;
* every chunk-aware kernel merges per-chunk results in chunk order and
  is BUN-identical to its serial form — whole operators included, with
  real thread pools and with the in-thread ``workers=1`` path;
* fault-simulation traces are unchanged by enabling the layer (the
  per-chunk page accounting unions before touching).
"""

import threading
import time

import numpy as np
import pytest

from repro.monet import bat_from_pairs, compute_props
from repro.monet import operators as ops
from repro.monet import parallel as par
from repro.monet import vectorized as vz
from repro.monet.buffer import BufferManager
from repro.monet.buffer import use as use_manager
from repro.monet.operators import naive
from repro.monet.optimizer import dispatch_disabled


def tiny_config(workers=3, chunk_bytes=64):
    """A config that forces many chunks on small test operands."""
    return par.ParallelConfig(workers=workers, chunk_bytes=chunk_bytes,
                              min_rows=1)


@pytest.fixture(params=[1, 3], ids=["inline", "pooled"])
def config(request):
    """Both execution modes of one identical chunk plan."""
    return tiny_config(workers=request.param)


# ----------------------------------------------------------------------
# planner + config plumbing
# ----------------------------------------------------------------------
def test_plan_chunks_partitions_range():
    plan = par.plan_chunks(10, 3)
    assert plan == [(0, 3), (3, 6), (6, 9), (9, 10)]
    covered = [pos for lo, hi in plan for pos in range(lo, hi)]
    assert covered == list(range(10))


def test_config_plan_honours_width_and_threshold():
    config = par.ParallelConfig(workers=2, chunk_bytes=64, min_rows=4)
    # 8-byte entries: 8 rows per chunk
    assert config.plan(20, 8) == [(0, 8), (8, 16), (16, 20)]
    # wider entries shrink the chunk rows
    assert config.plan(20, 16) == [(0, 4), (4, 8), (8, 12), (12, 16),
                                   (16, 20)]
    # below min_rows, or fitting one chunk: stay serial
    assert config.plan(3, 8) is None
    assert config.plan(8, 8) is None
    # the plan never depends on the worker count
    other = par.ParallelConfig(workers=7, chunk_bytes=64, min_rows=4)
    assert other.plan(20, 8) == config.plan(20, 8)


def test_chunk_plan_gated_by_installed_config():
    assert par.get_config() is None          # off by default
    assert par.chunk_plan(10 ** 6, 8) is None
    with par.use(tiny_config()):
        assert par.chunk_plan(100, 8) is not None
    assert par.get_config() is None          # context restored


def test_run_chunks_preserves_plan_order():
    # completion order is scrambled with sleeps; results must still
    # come back in plan order, which is what every merge relies on
    plan = [(0, 2), (2, 4), (4, 6), (6, 8)]

    def chunk(lo, hi):
        time.sleep(0.02 if lo == 0 else 0.001)
        return (lo, threading.get_ident())

    with par.use(tiny_config(workers=4)):
        results = par.run_chunks(chunk, plan)
    assert [lo for lo, _tid in results] == [0, 2, 4, 6]


# ----------------------------------------------------------------------
# kernel-level: chunked == serial == naive
# ----------------------------------------------------------------------
def _rng_keys(n, spread, seed):
    return np.random.default_rng(seed).integers(0, spread, size=n)


def test_match_chunked_equals_serial(config):
    right = _rng_keys(500, 40, seed=1)
    probes = _rng_keys(1200, 50, seed=2)
    serial = vz.join_match(probes, right)
    with par.use(config):
        chunked = vz.join_match(probes, right)
        segments = vz.MultiMap(right).match_chunks(probes)
    assert segments is not None and len(segments) > 1
    for got, want in zip(chunked, serial):
        assert np.array_equal(got, want)
    merged = vz.merge_match_segments(segments)
    for got, want in zip(merged, serial):
        assert np.array_equal(got, want)
    for got, want in zip(chunked, naive.join_match(probes, right)):
        assert np.array_equal(got, want)


def test_match_chunked_floats_with_nan(config):
    rng = np.random.default_rng(7)
    right = rng.choice([1.5, 2.5, float("nan"), -0.0, 9.0], size=300)
    probes = rng.choice([1.5, float("nan"), 0.0, 7.0], size=800)
    serial = vz.join_match(probes, right)
    with par.use(config):
        chunked = vz.join_match(probes, right)
    for got, want in zip(chunked, serial):
        assert np.array_equal(got, want)


def test_membership_chunked_equals_serial(config):
    left = _rng_keys(900, 60, seed=3)
    right = _rng_keys(200, 60, seed=4)
    serial = vz.membership_mask(left, right)
    with par.use(config):
        chunked = vz.membership_mask(left, right)
        # the direct-address (domain-coded) path chunks the gather
        domain_serial = vz.membership_mask(left, right, domain=60)
    assert np.array_equal(chunked, serial)
    assert np.array_equal(domain_serial, serial)
    assert np.array_equal(chunked, naive.membership_mask(left, right))


def test_membership_chunked_nan_never_member(config):
    nan = float("nan")
    left = np.asarray([1.0, nan, 2.0, nan] * 100)
    right = np.asarray([nan, 2.0])
    with par.use(config):
        mask = vz.membership_mask(left, right)
    assert np.array_equal(mask, np.asarray([False, False, True, False]
                                           * 100))


def test_factorize_chunked_equals_serial(config):
    keys = _rng_keys(1000, 37, seed=5)
    serial_codes, serial_n = vz.factorize(keys)
    with par.use(config):
        codes, n = vz.factorize(keys)
    assert n == serial_n
    assert np.array_equal(codes, serial_codes)


def test_factorize_chunked_nan_codes_identical(config):
    rng = np.random.default_rng(6)
    keys = rng.choice([1.5, 2.5, float("nan"), 8.0], size=600)
    serial_codes, serial_n = vz.factorize(keys)
    with par.use(config):
        codes, n = vz.factorize(keys)
    assert n == serial_n
    assert np.array_equal(codes, serial_codes)


def test_joint_codes_chunked_equality_preserved(config):
    left = _rng_keys(700, 1000, seed=8) * (2 ** 40)   # defeat offset coding
    right = _rng_keys(400, 1000, seed=9) * (2 ** 40)
    serial = vz.joint_codes(left, right)
    with par.use(config):
        chunked = vz.joint_codes(left, right)
    assert chunked[2] == serial[2]
    assert np.array_equal(chunked[0], serial[0])
    assert np.array_equal(chunked[1], serial[1])


def test_grouped_sum_chunked_exact(config):
    values = _rng_keys(1500, 10 ** 6, seed=10).astype(np.int64)
    codes, n_groups = vz.factorize(_rng_keys(1500, 23, seed=11))
    serial = vz.grouped_sum(values, codes, n_groups)
    # chunk_bytes sized so the partial-width gate keeps the chunked
    # path on (few chunks, few groups)
    chunky = par.ParallelConfig(workers=config.workers,
                                chunk_bytes=4096, min_rows=1)
    with par.use(chunky):
        chunked = vz.grouped_sum(values, codes, n_groups)
    assert np.array_equal(chunked, serial)
    assert np.array_equal(chunked,
                          naive.grouped_sum(values, codes, n_groups))


def test_grouped_sum_high_cardinality_stays_serial(config):
    # near-unique group keys: one full-width partial per chunk would
    # cost O(n_chunks * n_groups); the gate must fall back to serial
    values = _rng_keys(1200, 10 ** 6, seed=20).astype(np.int64)
    codes, n_groups = vz.factorize(np.arange(1200, dtype=np.int64))
    assert n_groups == 1200
    serial = vz.grouped_sum(values, codes, n_groups)
    with par.use(config):                   # 64-byte chunks: many chunks
        assert not vz._partials_worthwhile(
            n_groups, len(values),
            len(par.chunk_plan(len(values), 16)))
        chunked = vz.grouped_sum(values, codes, n_groups)
    assert np.array_equal(chunked, serial)


def test_grouped_weighted_sum_bit_identical_across_workers():
    weights = np.random.default_rng(12).random(2000)
    codes, n_groups = vz.factorize(_rng_keys(2000, 17, seed=13))
    outputs = []
    for workers in (1, 2, 5):
        with par.use(par.ParallelConfig(workers=workers,
                                        chunk_bytes=4096, min_rows=1)):
            outputs.append(vz.grouped_weighted_sum(codes, weights,
                                                   n_groups))
    # same chunk plan => bit-identical float sums, any worker count
    assert np.array_equal(outputs[0], outputs[1])
    assert np.array_equal(outputs[0], outputs[2])
    serial = np.bincount(codes, weights=weights, minlength=n_groups)
    assert np.allclose(outputs[0], serial, rtol=1e-12)


def test_object_keys_stay_on_dict_fallback(config):
    right = np.asarray(["a", "b", "c"] * 50, dtype=object)
    probes = np.asarray(["b", "z"] * 40, dtype=object)
    with par.use(config):
        assert vz.MultiMap(right).match_chunks(probes) is None
        got = vz.join_match(probes, right)
    want = naive.join_match(probes, right)
    for a, b in zip(got, want):
        assert np.array_equal(a, b)


# ----------------------------------------------------------------------
# operator-level: parallel == serial, faults included
# ----------------------------------------------------------------------
def _operator_bats(n=1200):
    rng = np.random.default_rng(42)
    ab = bat_from_pairs("oid", "long",
                        list(enumerate(rng.integers(0, n // 3,
                                                    size=n).tolist())))
    ab.props = compute_props(ab)
    cd_pairs = list(zip(rng.permutation(n // 3).tolist(),
                        rng.integers(0, 99, size=n // 3).tolist()))
    cd = bat_from_pairs("long", "long", cd_pairs)
    cd.props = compute_props(cd)
    sel_pairs = [(i, i) for i in range(0, n, 5)]
    sel = bat_from_pairs("oid", "oid", sel_pairs)
    sel.props = compute_props(sel)
    grouped = bat_from_pairs("long",
                             "double",
                             list(zip(rng.integers(0, n // 4,
                                                   size=n).tolist(),
                                      rng.random(n).tolist())))
    grouped.props = compute_props(grouped)
    return ab, cd, sel, grouped


def test_operators_identical_under_parallel(config):
    ab, cd, sel, grouped = _operator_bats()
    with dispatch_disabled():
        serial_join = ops.join(ab, cd).to_pairs()
        serial_semi = ops.semijoin(ab, sel).to_pairs()
    serial_group = ops.group1(grouped).to_pairs()
    serial_uniq = ops.unique(ab).to_pairs()
    serial_diff = ops.difference(ab, ab).to_pairs()
    with par.use(config):
        with dispatch_disabled():
            assert ops.join(ab, cd).to_pairs() == serial_join
            assert ops.semijoin(ab, sel).to_pairs() == serial_semi
        assert ops.group1(grouped).to_pairs() == serial_group
        assert ops.unique(ab).to_pairs() == serial_uniq
        assert ops.difference(ab, ab).to_pairs() == serial_diff


def test_aggregate_sum_deterministic_across_workers():
    _ab, _cd, _sel, grouped = _operator_bats()
    outputs = []
    for workers in (1, 4):
        with par.use(tiny_config(workers=workers, chunk_bytes=2048)):
            outputs.append(ops.set_aggregate("sum", grouped).to_pairs())
    assert outputs[0] == outputs[1]         # bit-identical, same plan
    serial = ops.set_aggregate("sum", grouped).to_pairs()
    assert [h for h, _t in outputs[0]] == [h for h, _t in serial]
    assert np.allclose([t for _h, t in outputs[0]],
                       [t for _h, t in serial], rtol=1e-12)


def test_fault_trace_unchanged_under_parallel(config):
    ab, cd, sel, grouped = _operator_bats()
    for column in (ab.head, ab.tail, cd.head, cd.tail,
                   grouped.head, grouped.tail):
        for heap in column.heaps:
            heap.persistent = True

    def trace():
        manager = BufferManager(page_size=4096)
        with use_manager(manager):
            with dispatch_disabled():
                ops.join(ab, cd)
                ops.semijoin(ab, sel)
            ops.group1(grouped)
            ops.set_aggregate("sum", grouped)
        return (manager.faults, manager.hits, manager.evictions,
                manager.op_faults)

    serial = trace()
    with par.use(config):
        parallel_trace = trace()
    assert parallel_trace == serial