"""Property-based differential query fuzzer (three-engine equality).

Hypothesis generates random typed BATs — int/float/string columns,
NaN keys, duplicates, empty operands — and random operator plans over
them.  Every operator application is executed three ways:

* **naive** — the BUN-at-a-time reference semantics, rebuilt here from
  the :mod:`repro.monet.operators.naive` kernels and plain Python
  dict/set loops (the executable specification),
* **vectorized serial** — the real operators, parallel layer off,
* **chunked parallel** — the same operators under a
  :class:`~repro.monet.parallel.ParallelConfig` with a deliberately
  tiny chunk budget (2 rows of 8-byte keys per chunk) and two workers,
  so every chunked kernel path and merge really runs.

Position/code/gather results must be **bit-identical** across all
three; float aggregate sums compare to the last ulp
(``np.allclose(rtol=1e-9)``) because the naive accumulation order and
the chunked partial-sum association legitimately differ.

NaN semantics are pinned throughout: a NaN key equals nothing (no join
match, no membership), and every NaN occurrence forms its own group /
survives dedup — the contract PR 3 established across the kernels.
"""

import numpy as np
import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.monet import bat_from_columns_values, compute_props
from repro.monet import operators as ops
from repro.monet import parallel as par
from repro.monet.column import equality_keys
from repro.monet.multiproc import result_checksum
from repro.monet.operators import naive

SETTINGS = dict(max_examples=25, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])

#: 2 rows of 8-byte keys per chunk: every operand of 3+ rows chunks,
#: so the merge paths run even on hypothesis-sized inputs
TINY_CHUNKS = dict(workers=2, chunk_bytes=16, min_rows=1)


def _bat(head_atom, heads, tail_atom, tails, props=False):
    out = bat_from_columns_values(head_atom, list(heads), tail_atom,
                                  list(tails))
    if props:
        out.props = compute_props(out)
    return out


def _buns(bat):
    """(head values, tail values) of a result BAT, BUN order."""
    return (np.asarray(bat.head.logical()),
            np.asarray(bat.tail.logical()))


def _assert_three_ways(op_fn, expected_buns, exact=True):
    """Run an operator serially and chunked-parallel; compare both
    against the naive-engine expectation."""
    serial = _buns(op_fn())
    with par.use(par.ParallelConfig(**TINY_CHUNKS)):
        chunked = _buns(op_fn())
    for label, got in (("serial", serial), ("parallel", chunked)):
        for side, expected_col, got_col in zip(
                ("head", "tail"), expected_buns, got):
            if exact or got_col.dtype.kind not in "fc":
                assert result_checksum(got_col) == \
                    result_checksum(np.asarray(expected_col,
                                               dtype=got_col.dtype)), \
                    "%s engine diverges from naive on %s" % (label, side)
            else:
                assert np.allclose(got_col,
                                   np.asarray(expected_col,
                                              dtype=np.float64),
                                   rtol=1e-9, atol=0.0, equal_nan=True)
    # serial and chunked must agree bit-for-bit on shapes regardless
    assert len(serial[0]) == len(chunked[0])


# ----------------------------------------------------------------------
# naive engine: reference semantics from the BUN-at-a-time kernels
# ----------------------------------------------------------------------
def naive_join(ab, cd):
    left, right = naive.join_match(*equality_keys(ab.tail, cd.head))
    heads, tails = _buns(ab)[0], _buns(cd)[1]
    return heads[left], tails[right]


def naive_semijoin(ab, cd):
    mask = naive.membership_mask(*equality_keys(ab.head, cd.head))
    heads, tails = _buns(ab)
    return heads[mask], tails[mask]


def naive_antijoin(ab, cd):
    mask = naive.membership_mask(*equality_keys(ab.head, cd.head))
    heads, tails = _buns(ab)
    return heads[~mask], tails[~mask]


def naive_select_range(ab, low, high):
    heads, tails = _buns(ab)
    keep = [pos for pos, value in enumerate(tails.tolist())
            if (low is None or value >= low)
            and (high is None or value <= high)]
    return heads[keep], tails[keep]


def naive_select_eq(ab, value):
    heads, tails = _buns(ab)
    keep = [pos for pos, v in enumerate(tails.tolist()) if v == value]
    return heads[keep], tails[keep]


def naive_group_codes(keys):
    """Dense codes in sorted-distinct order; every NaN its own code
    after the finite ones, in BUN order (the group1 contract)."""
    keys = np.asarray(keys)
    values = keys.tolist() if keys.dtype != object else list(keys)
    finite = sorted({v for v in values if v == v})
    rank = {v: code for code, v in enumerate(finite)}
    out = np.empty(len(values), dtype=np.int64)
    next_code = len(finite)
    for pos, value in enumerate(values):
        if value != value:                       # NaN
            out[pos] = next_code
            next_code += 1
        else:
            out[pos] = rank[value]
    return out, next_code


def naive_group1(ab):
    codes, _n = naive_group_codes(ab.tail.keys())
    return _buns(ab)[0], codes


def naive_aggregate(func, ab):
    keys = np.asarray(ab.head.keys())
    heads, tails = _buns(ab)
    values = keys.tolist()
    distinct = sorted(set(values))
    first_pos = {v: values.index(v) for v in distinct}
    groups = {v: [] for v in distinct}
    for v, tail in zip(values, tails.tolist()):
        groups[v].append(tail)
    out_heads = heads[[first_pos[v] for v in distinct]]
    out_tails = []
    for v in distinct:
        members = groups[v]
        if func == "count":
            out_tails.append(len(members))
        elif func == "sum":
            out_tails.append(sum(members))
        elif func == "avg":
            out_tails.append(sum(members) / len(members))
        elif func == "min":
            out_tails.append(min(members))
        else:
            out_tails.append(max(members))
    return out_heads, np.asarray(out_tails)


def _pairs(bat):
    heads, tails = _buns(bat)
    heads = heads.tolist() if heads.dtype != object else list(heads)
    tails = tails.tolist() if tails.dtype != object else list(tails)
    return list(zip(heads, tails))


def _dedup(pairs):
    seen = set()
    keep = []
    for pos, pair in enumerate(pairs):
        if pair not in seen:      # NaN pairs never equal: all survive
            seen.add(pair)
            keep.append(pos)
    return keep


def naive_unique(ab):
    heads, tails = _buns(ab)
    keep = _dedup(_pairs(ab))
    return heads[keep], tails[keep]


def naive_union(ab, cd):
    heads = np.concatenate([_buns(ab)[0], _buns(cd)[0]])
    tails = np.concatenate([_buns(ab)[1], _buns(cd)[1]])
    keep = _dedup(_pairs(ab) + _pairs(cd))
    return heads[keep], tails[keep]


def naive_difference(ab, cd):
    heads, tails = _buns(ab)
    members = set(_pairs(cd))
    keep = [pos for pos, pair in enumerate(_pairs(ab))
            if pair not in members]
    return heads[keep], tails[keep]


def naive_intersection(ab, cd):
    heads, tails = _buns(ab)
    members = set(_pairs(cd))
    seen = set()
    keep = []
    for pos, pair in enumerate(_pairs(ab)):
        if pair in members and pair not in seen:
            seen.add(pair)
            keep.append(pos)
    return heads[keep], tails[keep]


# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
ints = st.integers(min_value=-4, max_value=4)           # heavy overlap
floats = st.one_of(
    st.just(float("nan")),
    st.sampled_from([-1.5, 0.0, 0.5, 2.0, 1e300, -0.0]))
strings = st.sampled_from(["", "a", "b", "bb", "Clerk#1", "zz"])

int_lists = st.lists(ints, max_size=24)
float_lists = st.lists(floats, max_size=24)
string_lists = st.lists(strings, max_size=24)
finite_float_lists = st.lists(
    st.sampled_from([-1.5, 0.0, 0.5, 2.0, 3.25]), max_size=24)


def _heads(n):
    return list(range(n))


# ----------------------------------------------------------------------
# single-operator differentials
# ----------------------------------------------------------------------
@given(int_lists, int_lists, st.booleans())
@settings(**SETTINGS)
def test_join_differential_int(left, right, props):
    ab = _bat("oid", _heads(len(left)), "long", left, props=props)
    cd = _bat("long", right, "long", [v * 10 for v in right],
              props=props)
    _assert_three_ways(lambda: ops.join(ab, cd), naive_join(ab, cd))


@given(string_lists, string_lists)
@settings(**SETTINGS)
def test_join_differential_strings(left, right):
    ab = _bat("oid", _heads(len(left)), "string", left)
    cd = _bat("string", right, "long", _heads(len(right)))
    _assert_three_ways(lambda: ops.join(ab, cd), naive_join(ab, cd))


@given(float_lists, float_lists, st.booleans())
@settings(**SETTINGS)
def test_join_differential_nan_keys(left, right, props):
    ab = _bat("oid", _heads(len(left)), "double", left, props=props)
    cd = _bat("double", right, "long", _heads(len(right)), props=props)
    _assert_three_ways(lambda: ops.join(ab, cd), naive_join(ab, cd))


@given(int_lists, int_lists, st.booleans())
@settings(**SETTINGS)
def test_semijoin_differential(left, right, props):
    ab = _bat("long", left, "long", _heads(len(left)), props=props)
    cd = _bat("long", right, "long", _heads(len(right)), props=props)
    _assert_three_ways(lambda: ops.semijoin(ab, cd),
                       naive_semijoin(ab, cd))
    _assert_three_ways(lambda: ops.antijoin(ab, cd),
                       naive_antijoin(ab, cd))


@given(string_lists, string_lists)
@settings(**SETTINGS)
def test_semijoin_differential_strings(left, right):
    ab = _bat("string", left, "long", _heads(len(left)))
    cd = _bat("string", right, "long", _heads(len(right)))
    _assert_three_ways(lambda: ops.semijoin(ab, cd),
                       naive_semijoin(ab, cd))


@given(float_lists, st.booleans())
@settings(**SETTINGS)
def test_semijoin_differential_nan_keys(keys, props):
    ab = _bat("double", keys, "long", _heads(len(keys)), props=props)
    cd = _bat("double", list(reversed(keys)), "long",
              _heads(len(keys)), props=props)
    _assert_three_ways(lambda: ops.semijoin(ab, cd),
                       naive_semijoin(ab, cd))


@given(int_lists, ints, ints, st.booleans())
@settings(**SETTINGS)
def test_select_range_differential(tails, low, high, props):
    ab = _bat("oid", _heads(len(tails)), "long", tails, props=props)
    _assert_three_ways(lambda: ops.select_range(ab, low, high),
                       naive_select_range(ab, low, high))
    _assert_three_ways(lambda: ops.select_range(ab, low, None),
                       naive_select_range(ab, low, None))


@given(int_lists, ints, st.booleans())
@settings(**SETTINGS)
def test_select_eq_differential(tails, value, props):
    ab = _bat("oid", _heads(len(tails)), "long", tails, props=props)
    _assert_three_ways(lambda: ops.select_eq(ab, value),
                       naive_select_eq(ab, value))


@given(st.one_of(int_lists, float_lists, string_lists))
@settings(**SETTINGS)
def test_group1_differential(tails):
    atom = ("long" if all(isinstance(v, int) for v in tails)
            else "double" if not any(isinstance(v, str) for v in tails)
            else "string")
    ab = _bat("oid", _heads(len(tails)), atom, tails)
    _assert_three_ways(lambda: ops.group1(ab), naive_group1(ab))


@given(int_lists, st.sampled_from(ops.AGGREGATES), st.booleans())
@settings(**SETTINGS)
def test_aggregate_differential_int(keys, func, floats_tail):
    tails = ([v * 0.25 for v in range(len(keys))] if floats_tail
             else list(range(len(keys))))
    atom = "double" if floats_tail else "long"
    ab = _bat("long", keys, atom, tails)
    exact = func in ("count", "min", "max") or \
        (func == "sum" and not floats_tail)
    _assert_three_ways(lambda: ops.set_aggregate(func, ab),
                       naive_aggregate(func, ab), exact=exact)


@given(int_lists, int_lists)
@settings(**SETTINGS)
def test_setops_differential(left, right):
    ab = _bat("long", left, "long", [v % 3 for v in left])
    cd = _bat("long", right, "long", [v % 3 for v in right])
    _assert_three_ways(lambda: ops.unique(ab), naive_unique(ab))
    _assert_three_ways(lambda: ops.difference(ab, cd),
                       naive_difference(ab, cd))
    _assert_three_ways(lambda: ops.intersection(ab, cd),
                       naive_intersection(ab, cd))
    _assert_three_ways(lambda: ops.union(ab, cd), naive_union(ab, cd))


@given(float_lists, float_lists)
@settings(**SETTINGS)
def test_setops_differential_nan_tails(left, right):
    ab = _bat("oid", [v % 4 for v in _heads(len(left))], "double", left)
    cd = _bat("oid", [v % 4 for v in _heads(len(right))], "double",
              right)
    _assert_three_ways(lambda: ops.unique(ab), naive_unique(ab))
    _assert_three_ways(lambda: ops.difference(ab, cd),
                       naive_difference(ab, cd))
    _assert_three_ways(lambda: ops.intersection(ab, cd),
                       naive_intersection(ab, cd))


def test_empty_bats_every_op():
    """Empty operands flow through every fuzzed operator, three ways."""
    empty = _bat("long", [], "long", [])
    other = _bat("long", [1, 2, 2], "long", [0, 1, 2])
    cases = [
        (lambda: ops.join(empty, other), naive_join(empty, other)),
        (lambda: ops.join(other, empty), naive_join(other, empty)),
        (lambda: ops.semijoin(empty, other),
         naive_semijoin(empty, other)),
        (lambda: ops.semijoin(other, empty),
         naive_semijoin(other, empty)),
        (lambda: ops.select_range(empty, 0, 1),
         naive_select_range(empty, 0, 1)),
        (lambda: ops.unique(empty), naive_unique(empty)),
        (lambda: ops.difference(empty, other),
         naive_difference(empty, other)),
        (lambda: ops.difference(other, empty),
         naive_difference(other, empty)),
        (lambda: ops.intersection(other, empty),
         naive_intersection(other, empty)),
        (lambda: ops.union(empty, other), naive_union(empty, other)),
        (lambda: ops.group1(empty), naive_group1(empty)),
    ]
    for op_fn, expected in cases:
        _assert_three_ways(op_fn, expected)


# ----------------------------------------------------------------------
# composite random plans
# ----------------------------------------------------------------------
_PLAN_OPS = ("join", "semijoin", "select", "unique", "difference",
             "intersection", "union", "group")


@given(int_lists, int_lists,
       st.lists(st.tuples(st.sampled_from(_PLAN_OPS), ints, ints),
                min_size=1, max_size=4))
@settings(**SETTINGS)
def test_random_plan_differential(left, right, steps):
    """Random multi-operator plans, checked step by step.

    The serial engine drives the plan; at every step the naive mirror
    and the chunked-parallel engine run on the *same* inputs, so each
    operator is exercised on realistically-shaped intermediates (join
    outputs, deduped sets, group codes) instead of only on fresh base
    BATs.
    """
    pool = [
        _bat("long", left, "long", [v % 3 for v in left]),
        _bat("long", right, "long", [v * 2 for v in right]),
        _bat("long", _heads(len(left)), "long", left),
    ]
    for op_name, pick_a, pick_b in steps:
        ab = pool[pick_a % len(pool)]
        cd = pool[pick_b % len(pool)]
        if op_name == "join":
            op_fn = lambda a=ab, c=cd: ops.join(a, c)
            expected = naive_join(ab, cd)
        elif op_name == "semijoin":
            op_fn = lambda a=ab, c=cd: ops.semijoin(a, c)
            expected = naive_semijoin(ab, cd)
        elif op_name == "select":
            low, high = sorted((pick_a, pick_b))
            op_fn = lambda a=ab, lo=low, hi=high: \
                ops.select_range(a, lo, hi)
            expected = naive_select_range(ab, low, high)
        elif op_name == "unique":
            op_fn = lambda a=ab: ops.unique(a)
            expected = naive_unique(ab)
        elif op_name == "difference":
            op_fn = lambda a=ab, c=cd: ops.difference(a, c)
            expected = naive_difference(ab, cd)
        elif op_name == "intersection":
            op_fn = lambda a=ab, c=cd: ops.intersection(a, c)
            expected = naive_intersection(ab, cd)
        elif op_name == "union":
            op_fn = lambda a=ab, c=cd: ops.union(a, c)
            expected = naive_union(ab, cd)
        else:
            op_fn = lambda a=ab: ops.group1(a)
            expected = naive_group1(ab)
        _assert_three_ways(op_fn, expected)
        if op_name != "group":
            # every other op is closed over [long, long] BATs; group1
            # introduces an oid tail, which later set operations could
            # not legally concatenate with a long operand
            pool.append(op_fn())
