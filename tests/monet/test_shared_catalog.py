"""Shared-catalog protocol: generation counter, locking, concurrency.

The contract under test (see :mod:`repro.monet.storage`):

* every save bumps the manifest **generation** under the exclusive
  catalog lock, so writers serialise and the counter is monotonic;
* readers open under the shared lock and can pin a generation —
  the three edge cases (stale manifest, lock-held timeout,
  reopen-after-rewrite) each raise their own typed
  :class:`~repro.errors.CatalogError` subclass;
* a reader that already mapped a generation keeps serving it untouched
  while writers rewrite the directory (rename/unlink semantics), and
  fresh opens racing a writer either land on a complete old or a
  complete new generation — never on a torn mix.
"""

import json
import multiprocessing
import os

import numpy as np
import pytest

from repro.errors import (CatalogChangedError, CatalogError,
                          CatalogLockTimeout, StaleCatalogError)
from repro.monet import MonetKernel
from repro.monet.storage import (MemoryBackend, as_backend,
                                 catalog_generation)

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()
fork_only = pytest.mark.skipif(not HAVE_FORK,
                               reason="needs the fork start method")


def build_kernel(marker):
    """Two aligned BATs whose every tail equals ``marker`` — a torn
    read (mixing files of two generations) is detectable as a mixed
    or mismatched marker set."""
    kernel = MonetKernel()
    kernel.dense_bat("a", "long", [marker] * 16, group="g")
    kernel.dense_bat("b", "long", [marker] * 16, group="g")
    return kernel


def markers_of(kernel):
    a = set(np.asarray(kernel.get("a").tail.logical()).tolist())
    b = set(np.asarray(kernel.get("b").tail.logical()).tolist())
    return a, b


# ----------------------------------------------------------------------
# generation counter
# ----------------------------------------------------------------------
def test_save_assigns_generation_one(tmp_path):
    manifest = build_kernel(1).save(tmp_path / "db")
    assert manifest["generation"] == 1
    assert catalog_generation(tmp_path / "db") == 1


def test_resave_bumps_generation(tmp_path):
    kernel = build_kernel(1)
    kernel.save(tmp_path / "db")
    kernel.save(tmp_path / "db")
    assert build_kernel(2).save(tmp_path / "db")["generation"] == 3
    assert catalog_generation(tmp_path / "db") == 3


def test_catalog_generation_requires_manifest(tmp_path):
    with pytest.raises(CatalogError):
        catalog_generation(tmp_path / "nothing")


def test_open_never_litters_missing_directories(tmp_path):
    """Opening a typo'd path must not create directories or lock
    files on the way to its CatalogError (readers degrade to
    lock-free when the lock file cannot be created)."""
    target = tmp_path / "no" / "such" / "db"
    with pytest.raises(CatalogError):
        MonetKernel.open(target)
    assert not (tmp_path / "no").exists()


def test_memory_backend_generations():
    backend = MemoryBackend()
    build_kernel(1).save(backend)
    build_kernel(2).save(backend)
    assert catalog_generation(backend) == 2
    assert MonetKernel.open(backend, expected_generation=2) is not None


def test_open_records_generation_and_origin(tmp_path):
    build_kernel(7).save(tmp_path / "db")
    kernel = MonetKernel.open(tmp_path / "db")
    assert kernel.generation == 1
    assert kernel.origin is not None
    assert not kernel.is_stale()
    kernel.assert_current()


def test_pre_protocol_manifest_reads_as_generation_zero(tmp_path):
    build_kernel(1).save(tmp_path / "db")
    manifest_path = tmp_path / "db" / "catalog.json"
    manifest = json.loads(manifest_path.read_text())
    del manifest["generation"]                  # a PR 2-era save
    manifest_path.write_text(json.dumps(manifest))
    kernel = MonetKernel.open(tmp_path / "db")
    assert kernel.generation == 0
    # the next save still moves the counter forward
    assert build_kernel(2).save(tmp_path / "db")["generation"] == 1


def test_invalid_generation_raises_catalog_error(tmp_path):
    build_kernel(1).save(tmp_path / "db")
    manifest_path = tmp_path / "db" / "catalog.json"
    manifest = json.loads(manifest_path.read_text())
    manifest["generation"] = "three"
    manifest_path.write_text(json.dumps(manifest))
    with pytest.raises(CatalogError):
        MonetKernel.open(tmp_path / "db")


# ----------------------------------------------------------------------
# typed edge cases: stale / rewritten / lock timeout
# ----------------------------------------------------------------------
def test_open_pinned_generation(tmp_path):
    build_kernel(1).save(tmp_path / "db")
    kernel = MonetKernel.open(tmp_path / "db", expected_generation=1)
    assert kernel.generation == 1


def test_open_stale_manifest_raises(tmp_path):
    build_kernel(1).save(tmp_path / "db")
    with pytest.raises(StaleCatalogError) as info:
        MonetKernel.open(tmp_path / "db", expected_generation=4)
    assert "stale manifest" in str(info.value)
    assert "generation 1" in str(info.value)


def test_open_after_rewrite_raises(tmp_path):
    build_kernel(1).save(tmp_path / "db")
    build_kernel(2).save(tmp_path / "db")
    with pytest.raises(CatalogChangedError) as info:
        MonetKernel.open(tmp_path / "db", expected_generation=1)
    assert "rewritten" in str(info.value)


def test_is_stale_and_assert_current_after_rewrite(tmp_path):
    build_kernel(1).save(tmp_path / "db")
    reader = MonetKernel.open(tmp_path / "db")
    assert not reader.is_stale()
    build_kernel(2).save(tmp_path / "db")
    assert reader.is_stale()
    with pytest.raises(CatalogChangedError):
        reader.assert_current()


def test_is_stale_when_origin_unreadable(tmp_path):
    import shutil
    build_kernel(1).save(tmp_path / "db")
    reader = MonetKernel.open(tmp_path / "db")
    shutil.rmtree(tmp_path / "db")
    # the predicate form stays a predicate: an unreadable origin
    # means "do not trust this snapshot", not an exception
    assert reader.is_stale()


def test_assert_current_detects_rollback(tmp_path):
    build_kernel(1).save(tmp_path / "db")
    build_kernel(2).save(tmp_path / "db")
    reader = MonetKernel.open(tmp_path / "db")
    manifest_path = tmp_path / "db" / "catalog.json"
    manifest = json.loads(manifest_path.read_text())
    manifest["generation"] = 1                   # rolled-back directory
    manifest_path.write_text(json.dumps(manifest))
    with pytest.raises(StaleCatalogError):
        reader.assert_current()


@pytest.mark.skipif(not hasattr(os, "fork"), reason="POSIX locks")
def test_lock_held_timeout(tmp_path):
    build_kernel(1).save(tmp_path / "db")
    holder = as_backend(tmp_path / "db")
    with holder.lock().exclusive():
        # a different backend instance = a different lock fd, so this
        # conflicts exactly like a second process would
        with pytest.raises(CatalogLockTimeout):
            MonetKernel.open(tmp_path / "db", lock_timeout=0.05)
        with pytest.raises(CatalogLockTimeout):
            build_kernel(2).save(tmp_path / "db", lock_timeout=0.05)
    # lock released: both sides proceed
    MonetKernel.open(tmp_path / "db")
    build_kernel(2).save(tmp_path / "db")


@pytest.mark.skipif(not hasattr(os, "fork"), reason="POSIX locks")
def test_lock_reentrant_and_shared_coexistence(tmp_path):
    build_kernel(1).save(tmp_path / "db")
    backend = as_backend(tmp_path / "db")
    with backend.lock().exclusive():
        with backend.lock().exclusive():         # re-entrant writer
            build_kernel(2).save(backend)
    assert catalog_generation(backend) == 2
    reader_a = as_backend(tmp_path / "db")
    reader_b = as_backend(tmp_path / "db")
    with reader_a.lock().shared():
        with reader_b.lock().shared():           # readers coexist
            assert catalog_generation(reader_b) == 2


# ----------------------------------------------------------------------
# reader isolation: an open generation is never clobbered
# ----------------------------------------------------------------------
def test_reader_keeps_its_generation_across_rewrites(tmp_path):
    build_kernel(11).save(tmp_path / "db")
    reader = MonetKernel.open(tmp_path / "db")
    before = markers_of(reader)
    for marker in (22, 33):
        build_kernel(marker).save(tmp_path / "db")
    # the reader's mmaps still serve generation 1 bit-for-bit
    assert markers_of(reader) == before == ({11}, {11})
    # a fresh open serves the newest generation
    assert markers_of(MonetKernel.open(tmp_path / "db")) == ({33}, {33})


# ----------------------------------------------------------------------
# multi-process stress
# ----------------------------------------------------------------------
def _writer_proc(db_dir, markers):
    for marker in markers:
        build_kernel(marker).save(db_dir)


def _reader_proc(db_dir, rounds, queue):
    try:
        generations = set()
        for _round in range(rounds):
            kernel = MonetKernel.open(db_dir)
            a, b = markers_of(kernel)
            if not (len(a) == 1 and a == b):
                queue.put(("torn", sorted(a), sorted(b)))
                return
            generations.add(kernel.generation)
        queue.put(("ok", sorted(generations)))
    except Exception as exc:                     # crash = test failure
        queue.put(("error", type(exc).__name__, str(exc)))


@fork_only
def test_readers_never_crash_or_tear_while_writer_saves(tmp_path):
    """N reader processes open the db_dir while a writer rewrites it:
    every open lands on one complete generation (old or new), and no
    reader ever crashes or observes torn heaps."""
    db_dir = os.fspath(tmp_path / "db")
    build_kernel(1).save(db_dir)
    context = multiprocessing.get_context("fork")
    queue = context.Queue()
    readers = [context.Process(target=_reader_proc,
                               args=(db_dir, 12, queue))
               for _reader in range(2)]
    writer = context.Process(target=_writer_proc,
                             args=(db_dir, list(range(2, 14))))
    for process in readers + [writer]:
        process.start()
    reports = [queue.get(timeout=60) for _reader in readers]
    for process in readers + [writer]:
        process.join(timeout=60)
        assert process.exitcode == 0
    for report in reports:
        assert report[0] == "ok", report
        assert all(generation >= 1 for generation in report[1])
    # the directory is left fully consistent at the last generation
    assert markers_of(MonetKernel.open(db_dir)) == ({13}, {13})
    assert catalog_generation(db_dir) == 13


def _competing_writer(db_dir, markers):
    for marker in markers:
        build_kernel(marker).save(db_dir)


@fork_only
def test_concurrent_writers_serialize_generations(tmp_path):
    """Two writer processes interleave saves: the exclusive lock makes
    the generation counter strictly monotonic with no lost updates."""
    db_dir = os.fspath(tmp_path / "db")
    build_kernel(0).save(db_dir)
    context = multiprocessing.get_context("fork")
    writers = [context.Process(target=_competing_writer,
                               args=(db_dir, [100 + which] * 4))
               for which in range(2)]
    for process in writers:
        process.start()
    for process in writers:
        process.join(timeout=60)
        assert process.exitcode == 0
    assert catalog_generation(db_dir) == 1 + 2 * 4
    a, b = markers_of(MonetKernel.open(db_dir))
    assert len(a) == 1 and a == b and a.issubset({100, 101})
