"""Storage layer: backends, save/open round trips, corruption paths.

The round-trip contract is BUN-for-BUN equality across every atom
kind, with properties, alignment (synced) groups, shared var heaps and
accelerators preserved — and, for the mmap backend, *zero-copy*
reopening: columns come back as ``np.memmap`` views and var heaps do
not decode until first use.
"""

import json
import os

import numpy as np
import pytest

from repro.errors import CatalogError, HeapError
from repro.monet import (MemoryBackend, MmapBackend, MonetKernel,
                         operators as ops)
from repro.monet.accelerators.hashidx import hash_of
from repro.monet.buffer import BufferManager, use
from repro.monet.heap import MappedVarHeap, VarHeap
from repro.monet.properties import synced, verify
from repro.monet.storage import (PAGESIZE, heap_resident_pages,
                                 mapped_file_rss, resident_page_count,
                                 residency_report, residency_snapshot)


def build_kernel():
    """A small catalog covering every atom kind + accelerators."""
    kernel = MonetKernel()
    kernel.bulk_load("T_name", "oid", [0, 1, 2, 3], "string",
                     ["cherry", "apple", "banana", "apple"], group="T")
    kernel.bulk_load("T_price", "oid", [0, 1, 2, 3], "double",
                     [9.5, 1.25, -3.0, 1.25], group="T")
    kernel.bulk_load("T_size", "oid", [0, 1, 2, 3], "int",
                     [7, 2, 2, 9], group="T")
    kernel.bulk_load("T_flag", "oid", [0, 1, 2, 3], "bool",
                     [True, False, True, True], group="T")
    kernel.bulk_load("T_grade", "oid", [0, 1, 2, 3], "char",
                     ["a", "c", "b", "a"], group="T")
    kernel.bulk_load("T_when", "oid", [0, 1, 2, 3], "instant",
                     ["1995-03-05", "1992-01-01", "1998-08-02",
                      "1995-03-05"], group="T")
    kernel.create_extent("T", "T_name")
    kernel.create_datavectors("T", ["T_name", "T_price"])
    # build a hash accelerator so persistence covers it (the ordered
    # oid heads would dispatch joins to mergejoin, so build directly
    # on the float tail — Figure 2's "hash heap" on a value column)
    hash_of(kernel.get("T_price"), "tail")
    assert "hash_tail" in kernel.get("T_price").accel
    return kernel


@pytest.fixture(params=["memory", "mmap"])
def backend(request, tmp_path):
    if request.param == "memory":
        return MemoryBackend()
    return MmapBackend(tmp_path / "db")


def test_round_trip_bun_for_bun(backend):
    kernel = build_kernel()
    kernel.save(backend, meta={"kind": "demo"})
    reopened = MonetKernel.open(backend)
    assert reopened.names() == kernel.names()
    for name in kernel.names():
        original, copy = kernel.get(name), reopened.get(name)
        assert copy.to_pairs() == original.to_pairs(), name
        assert copy.props == original.props, name
        assert copy.signature() == original.signature(), name
        verify(copy)


def test_round_trip_alignment_and_shared_heaps(backend):
    kernel = build_kernel()
    kernel.save(backend)
    reopened = MonetKernel.open(backend)
    # one load group -> still mutually synced after reopen
    assert synced(reopened.get("T_name"), reopened.get("T_price"))
    assert synced(reopened.get("T_name"), reopened.get("T_when"))
    # the datavector of a string attribute shares the base heap; the
    # share must survive (the heap is written and opened exactly once)
    name_bat = reopened.get("T_name")
    vector = name_bat.accel["datavector"].vector
    assert vector.heap is name_bat.tail.heap
    # reopened group alignment is re-attached to the kernel, so later
    # loads into the same group stay synced with reopened BATs
    reopened.bulk_load("T_extra", "oid", [0, 1, 2, 3], "int",
                       [5, 6, 7, 8], group="T")
    assert synced(reopened.get("T_extra"), reopened.get("T_price"))


def test_round_trip_accelerators(backend):
    kernel = build_kernel()
    kernel.save(backend)
    reopened = MonetKernel.open(backend)
    # datavector answers the same lookups
    original_dv = kernel.get("T_price").accel["datavector"]
    reopened_dv = reopened.get("T_price").accel["datavector"]
    assert list(reopened_dv.vector.logical()) == \
        list(original_dv.vector.logical())
    assert np.array_equal(reopened_dv.registry.extent,
                          original_dv.registry.extent)
    # hash index probes the same positions without re-sorting
    original_hash = kernel.get("T_price").accel["hash_tail"]
    reopened_hash = reopened.get("T_price").accel["hash_tail"]
    for key in [9.5, 1.25, -3.0, 123.0]:
        assert list(reopened_hash.positions(key)) == \
            list(original_hash.positions(key))


def test_mmap_reopen_is_zero_copy_and_lazy(tmp_path):
    kernel = build_kernel()
    kernel.save(tmp_path / "db")
    reopened = MonetKernel.open(tmp_path / "db")
    price = reopened.get("T_price")
    assert isinstance(price.tail.data, np.memmap)
    assert isinstance(price.head.data, np.memmap)
    name = reopened.get("T_name")
    assert isinstance(name.tail.indices, np.memmap)
    heap = name.tail.heap
    assert isinstance(heap, MappedVarHeap)
    assert not heap.decoded          # no eager read of the bodies
    assert len(heap) == 3            # length known without decoding
    assert heap.nbytes == sum(len(v) + 1 for v in
                              ("cherry", "apple", "banana"))
    # first decode materialises values + lookup lazily
    assert name.tail.value(0) == "cherry"
    assert heap.decoded
    assert heap.lookup["banana"] == 2


def test_saving_reopened_kernel_does_not_decode(tmp_path):
    kernel = build_kernel()
    kernel.save(tmp_path / "one")
    reopened = MonetKernel.open(tmp_path / "one")
    reopened.save(tmp_path / "two")
    assert not reopened.get("T_name").tail.heap.decoded
    again = MonetKernel.open(tmp_path / "two")
    assert again.get("T_name").to_pairs() == \
        kernel.get("T_name").to_pairs()


def test_resave_prunes_stale_heap_files(tmp_path):
    # heap ids are process-global, so a re-save writes fresh vh<N>
    # names; the previous generation must not be stranded on disk
    kernel = build_kernel()
    kernel.save(tmp_path / "db")
    first = set(os.listdir(tmp_path / "db"))
    reopened = MonetKernel.open(tmp_path / "db")
    reopened.save(tmp_path / "db")
    second = set(os.listdir(tmp_path / "db"))
    assert len(second) <= len(first)
    foreign = tmp_path / "db" / "users-notes.txt"
    foreign.write_text("not ours")
    MonetKernel.open(tmp_path / "db").save(tmp_path / "db")
    assert foreign.exists()               # pruning never touches it
    assert MonetKernel.open(tmp_path / "db").get("T_name").to_pairs() \
        == kernel.get("T_name").to_pairs()


def test_saving_back_to_the_same_directory(tmp_path):
    # the arrays being written are np.memmap views of the destination
    # files themselves; the write-to-temp + rename path must not
    # truncate the backing file under the live mapping (SIGBUS)
    kernel = build_kernel()
    kernel.save(tmp_path / "db")
    reopened = MonetKernel.open(tmp_path / "db")
    reopened.save(tmp_path / "db")
    again = MonetKernel.open(tmp_path / "db")
    for name in kernel.names():
        assert again.get(name).to_pairs() == \
            kernel.get(name).to_pairs(), name


def test_missing_manifest_raises_catalog_error(tmp_path):
    with pytest.raises(CatalogError):
        MonetKernel.open(tmp_path / "nowhere")


def test_corrupt_manifest_raises_catalog_error(tmp_path):
    kernel = build_kernel()
    kernel.save(tmp_path / "db")
    manifest_path = tmp_path / "db" / "catalog.json"
    text = manifest_path.read_text()
    manifest_path.write_text(text[:len(text) // 2])   # truncated JSON
    with pytest.raises(CatalogError):
        MonetKernel.open(tmp_path / "db")


def test_wrong_format_raises_catalog_error(tmp_path):
    kernel = build_kernel()
    kernel.save(tmp_path / "db")
    manifest_path = tmp_path / "db" / "catalog.json"
    manifest = json.loads(manifest_path.read_text())
    manifest["format"] = "something-else"
    manifest_path.write_text(json.dumps(manifest))
    with pytest.raises(CatalogError):
        MonetKernel.open(tmp_path / "db")


def test_unsupported_version_raises_catalog_error(tmp_path):
    kernel = build_kernel()
    kernel.save(tmp_path / "db")
    manifest_path = tmp_path / "db" / "catalog.json"
    manifest = json.loads(manifest_path.read_text())
    manifest["version"] = 999
    manifest_path.write_text(json.dumps(manifest))
    with pytest.raises(CatalogError):
        MonetKernel.open(tmp_path / "db")


def _heap_file_of(db_dir, bat_name):
    # heap file names are generation-scoped; the manifest is the one
    # authority on them
    manifest = json.loads((db_dir / "catalog.json").read_text())
    return db_dir / manifest["bats"][bat_name]["tail"]["file"]


def test_truncated_heap_file_raises_heap_error(tmp_path):
    kernel = build_kernel()
    kernel.save(tmp_path / "db")
    victim = _heap_file_of(tmp_path / "db", "T_price")
    data = victim.read_bytes()
    victim.write_bytes(data[:-8])
    with pytest.raises(HeapError):
        MonetKernel.open(tmp_path / "db")


def test_missing_heap_file_raises_heap_error(tmp_path):
    kernel = build_kernel()
    kernel.save(tmp_path / "db")
    os.unlink(_heap_file_of(tmp_path / "db", "T_size"))
    with pytest.raises(HeapError):
        MonetKernel.open(tmp_path / "db")


def test_empty_catalog_and_empty_heaps_round_trip(tmp_path):
    kernel = MonetKernel()
    kernel.save(tmp_path / "empty")
    assert MonetKernel.open(tmp_path / "empty").names() == []

    kernel.bulk_load("E", "oid", [], "string", [])
    kernel.save(tmp_path / "db")
    reopened = MonetKernel.open(tmp_path / "db")
    assert reopened.get("E").to_pairs() == []
    assert len(reopened.get("E").tail.heap) == 0


def test_buffer_tracks_pages_per_heap():
    kernel = build_kernel()
    bat = kernel.get("T_price")
    manager = BufferManager(page_size=4096, track_pages=True)
    with use(manager):
        ops.select_range(bat, -100.0, 100.0)
    counts = manager.touched_page_counts()
    assert counts
    assert all(pages >= 1 for pages in counts.values())
    manager.reset_counters()
    assert manager.touched_page_counts() == {}


def test_residency_report_against_real_pager(tmp_path):
    n = 64 * PAGESIZE // 8          # 64 pages of int64 per column
    kernel = MonetKernel()
    kernel.bulk_load("big", "oid", list(range(n)), "long",
                     list(range(n)), group="G")
    kernel.save(tmp_path / "db")
    reopened = MonetKernel.open(tmp_path / "db")
    bat = reopened.get("big")
    before = residency_snapshot(reopened)
    if not before:
        pytest.skip("smaps residency accounting unavailable")
    # a fresh mapping has faulted nothing in yet — the no-eager-read
    # guarantee, observed through the real pager
    assert all(pages == 0 for pages in before.values())

    manager = BufferManager(page_size=PAGESIZE, track_pages=True)
    with use(manager):
        manager.access_heap(bat.tail.heaps[0])
    int(np.asarray(bat.tail.data).sum())     # really touch every page
    rows, totals = residency_report(reopened, manager, before=before)
    tail_rows = [row for row in rows if row["label"] == "big.tail"]
    assert tail_rows
    assert tail_rows[0]["simulated_pages"] == 64
    assert tail_rows[0]["resident_pages"] >= 64


def test_residency_helpers_degrade_gracefully(tmp_path):
    assert mapped_file_rss(None) is None
    assert mapped_file_rss(str(tmp_path / "unmapped.bin")) in (0, None)
    in_memory = np.arange(1024, dtype=np.int64)
    pages = resident_page_count(in_memory)
    assert pages is None or pages >= 0
    plain_heap_bat = MonetKernel()
    plain_heap_bat.bulk_load("m", "oid", [0, 1], "long", [1, 2])
    for column in (plain_heap_bat.get("m").head,
                   plain_heap_bat.get("m").tail):
        for heap in column.heaps:
            assert heap_resident_pages(heap) is None   # not mmap-backed


def test_var_heap_sorted_order_vectorised_and_cached():
    heap = VarHeap()
    for value in ["pear", "apple", "fig", "apple", "cherry"]:
        heap.insert(value)
    order, rank = heap.sorted_order()
    assert [heap.values[i] for i in order] == \
        sorted(["pear", "apple", "fig", "cherry"])
    assert list(rank[order]) == list(range(len(heap)))
    # cached until the next insert (same objects returned)
    assert heap.sorted_order()[0] is order
    table = heap.decode_table()
    assert heap.decode_table() is table
    banana = heap.insert("banana")
    assert heap.sorted_order()[0] is not order
    assert list(heap.decode([banana])) == ["banana"]


def test_mapped_var_heap_insert_after_reopen_round_trips(tmp_path):
    """Mutating a reopened (mmap-backed) var heap must behave like a
    live VarHeap: the insert materialises the value list lazily,
    ``lookup``/``_body_bytes`` stay consistent, and a subsequent
    ``MonetKernel.save`` re-encodes the mutated heap instead of
    writing the stale mapped bytes."""
    kernel = build_kernel()
    kernel.save(tmp_path / "db")
    reopened = MonetKernel.open(tmp_path / "db")
    heap = reopened.get("T_name").tail.heap
    assert isinstance(heap, MappedVarHeap) and not heap.decoded

    before_bytes = heap.nbytes
    index = heap.insert("quince")
    assert heap.decoded                      # insert forced the decode
    assert index == 3                        # appended after the
    assert heap.decode_one(index) == "quince"   # 3 mapped values
    assert heap.insert("quince") == index    # interning, not appending
    assert heap.lookup == {"cherry": 0, "apple": 1, "banana": 2,
                           "quince": 3}
    assert heap.nbytes == before_bytes + len("quince") + 1
    assert len(heap) == 4

    # the mutated heap round-trips through save (fresh dir and
    # save-over-self, which rewrites under the live mapping)
    for target in (tmp_path / "other", tmp_path / "db"):
        reopened.save(target)
        again = MonetKernel.open(target)
        again_heap = again.get("T_name").tail.heap
        assert len(again_heap) == 4
        assert again_heap.decode_one(3) == "quince"
        assert again_heap.nbytes == heap.nbytes
        assert again.get("T_name").to_pairs() == \
            kernel.get("T_name").to_pairs()
        assert again_heap.lookup["quince"] == 3


def test_mapped_var_heap_sorted_order(tmp_path):
    kernel = build_kernel()
    kernel.save(tmp_path / "db")
    reopened = MonetKernel.open(tmp_path / "db")
    heap = reopened.get("T_name").tail.heap
    order, _rank = heap.sorted_order()
    assert [heap.values[i] for i in order] == \
        ["apple", "banana", "cherry"]
