"""Differential tests: vectorised kernels == naive BUN-at-a-time loops.

The vectorised primitives in :mod:`repro.monet.vectorized` replaced
Python dict/set/loop implementations that now live on as executable
references in :mod:`repro.monet.operators.naive`.  Hypothesis drives
both over the same inputs and asserts BUN-for-BUN identical output —
including match order, first-occurrence order, empty operands,
all-duplicate keys, huge key spreads (which disable the direct-address
table) and object-dtype keys (which exercise the dict fallback).

A second block runs whole *operators* differentially across atom types
(int, dbl, str/var-sized, oid/void heads), since the kernels only pay
off if the operator wiring preserved the algebra's semantics.
"""

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.monet import (bat_dense_head, bat_from_pairs, compute_props,
                         verify)
from repro.monet import operators as ops
from repro.monet import vectorized as vz
from repro.monet.column import column_from_values
from repro.monet.operators import naive

_ints = st.lists(st.integers(-50, 50), max_size=40)
_wide_ints = st.lists(
    st.integers(-2 ** 62, 2 ** 62) | st.integers(-50, 50), max_size=25)
_floats = st.lists(st.floats(allow_nan=False, allow_infinity=False,
                             width=32), max_size=30)
_strs = st.lists(st.sampled_from(["a", "b", "abc", "", "zz", "q"]),
                 max_size=25)


def _int_arr(values):
    return np.asarray(values, dtype=np.int64)


def _obj_arr(values):
    return np.asarray(values, dtype=object)


def _assert_same(pair_a, pair_b):
    for got, want in zip(pair_a, pair_b):
        assert np.array_equal(np.asarray(got), np.asarray(want))


# ----------------------------------------------------------------------
# kernel-level differentials
# ----------------------------------------------------------------------
@settings(max_examples=80, deadline=None)
@given(_ints, _ints)
def test_join_match_matches_naive(left, right):
    _assert_same(vz.join_match(_int_arr(left), _int_arr(right)),
                 naive.join_match(_int_arr(left), _int_arr(right)))


@settings(max_examples=40, deadline=None)
@given(_wide_ints, _wide_ints)
def test_join_match_wide_spread(left, right):
    # huge key spreads must not build (or mis-index) the dense table
    _assert_same(vz.join_match(_int_arr(left), _int_arr(right)),
                 naive.join_match(_int_arr(left), _int_arr(right)))


@settings(max_examples=40, deadline=None)
@given(_floats, _floats)
def test_join_match_floats(left, right):
    la = np.asarray(left, dtype=np.float64)
    ra = np.asarray(right, dtype=np.float64)
    _assert_same(vz.join_match(la, ra), naive.join_match(la, ra))


@settings(max_examples=40, deadline=None)
@given(_strs, _strs)
def test_join_match_object_fallback(left, right):
    la, ra = _obj_arr(left), _obj_arr(right)
    mm = vz.MultiMap(ra)
    assert not mm.vectorised or len(right) == 0
    _assert_same(mm.match(la), naive.join_match(la, ra))


def test_join_match_nan_never_matches():
    # IEEE semantics (and the dict reference): NaN != NaN
    nan = float("nan")
    la = np.asarray([1.0, nan, 2.0], dtype=np.float64)
    ra = np.asarray([nan, 2.0, nan], dtype=np.float64)
    _assert_same(vz.join_match(la, ra), naive.join_match(la, ra))
    lp, rp = vz.join_match(la, ra)
    assert list(lp) == [2] and list(rp) == [1]
    mm = vz.MultiMap(ra)
    assert mm.positions(nan) == ()
    assert np.array_equal(mm.lookup_first(la),
                          naive.lookup_first(ra, la))


def test_lookup_first_object_probes_on_array_map():
    mm = vz.MultiMap(_int_arr([5, 7, 5, 9]))
    probes = _obj_arr([7, 42])
    assert list(mm.lookup_first(probes)) == [1, -1]


def test_join_match_all_duplicates():
    left = _int_arr([7] * 10)
    right = _int_arr([7] * 8)
    lp, rp = vz.join_match(left, right)
    assert len(lp) == 80
    _assert_same((lp, rp), naive.join_match(left, right))


def test_join_match_empty_operands():
    empty = _int_arr([])
    some = _int_arr([1, 2, 2])
    for la, ra in [(empty, some), (some, empty), (empty, empty)]:
        _assert_same(vz.join_match(la, ra), naive.join_match(la, ra))


@settings(max_examples=80, deadline=None)
@given(st.one_of(
    st.tuples(_ints, _ints), st.tuples(_wide_ints, _wide_ints),
    st.tuples(_strs, _strs)))
def test_membership_mask_matches_naive(pair):
    left, right = pair
    la = (_obj_arr(left) if left and isinstance(left[0], str)
          else _int_arr(left))
    ra = (_obj_arr(right) if right and isinstance(right[0], str)
          else _int_arr(right))
    if la.dtype != ra.dtype:
        la = la.astype(object)
        ra = ra.astype(object)
    assert np.array_equal(vz.membership_mask(la, ra),
                          naive.membership_mask(la, ra))


@settings(max_examples=60, deadline=None)
@given(_ints, _ints)
def test_lookup_first_matches_naive(right, probes):
    ra, pa = _int_arr(right), _int_arr(probes)
    assert np.array_equal(vz.MultiMap(ra).lookup_first(pa),
                          naive.lookup_first(ra, pa))


@settings(max_examples=60, deadline=None)
@given(_ints)
def test_first_occurrence_matches_naive(values):
    arr = _int_arr(values)
    assert np.array_equal(vz.first_occurrence(arr),
                          naive.first_occurrence(arr))


@settings(max_examples=60, deadline=None)
@given(_ints)
def test_grouped_sum_matches_naive(values):
    arr = _int_arr(values)
    codes, n_groups = vz.factorize(arr % 7 if len(arr) else arr)
    assert np.array_equal(vz.grouped_sum(arr, codes, n_groups),
                          naive.grouped_sum(arr, codes, n_groups))


@settings(max_examples=60, deadline=None)
@given(_ints)
def test_factorize_round_trip(values):
    arr = _int_arr(values)
    codes, n = vz.factorize(arr)
    if len(arr):
        assert codes.min() >= 0 and codes.max() == n - 1
        # codes are in sorted distinct-key order (group-oid contract)
        uniq = np.unique(arr)
        assert np.array_equal(uniq[codes], arr)
    else:
        assert n == 0


@settings(max_examples=60, deadline=None)
@given(_ints, _ints)
def test_joint_codes_preserve_equality(left, right):
    la, ra = _int_arr(left), _int_arr(right)
    lc, rc, n = vz.joint_codes(la, ra)
    both_keys = np.concatenate([la, ra])
    both_codes = np.concatenate([lc, rc])
    for i in range(len(both_keys)):
        same_key = both_keys == both_keys[i]
        same_code = both_codes == both_codes[i]
        assert np.array_equal(same_key, same_code)
    assert len(both_codes) == 0 or both_codes.max() < n


# ----------------------------------------------------------------------
# NaN keys: IEEE semantics on every coded path (NaN != NaN, like the
# dict references — np.unique's equal_nan collapse must not leak out)
# ----------------------------------------------------------------------
_nan_floats = st.lists(st.floats(min_value=-8, max_value=8, width=16)
                       | st.just(float("nan")), max_size=25)


def _equality_partition(codes):
    codes = np.asarray(codes)
    return codes[:, None] == codes[None, :]


def test_factorize_nan_keys_each_distinct():
    nan = float("nan")
    keys = np.asarray([1.0, nan, 1.0, nan, 2.0])
    codes, n = vz.factorize(keys)
    assert n == 4                       # {1.0, 2.0} + two distinct NaNs
    assert codes[0] == codes[2]
    assert codes[1] != codes[3]
    # finite codes keep the sorted distinct-key contract; NaN codes
    # come after them in BUN order
    assert codes[0] == 0 and codes[4] == 1
    assert list(codes[[1, 3]]) == [2, 3]


@settings(max_examples=60, deadline=None)
@given(_nan_floats)
def test_factorize_nan_partition_matches_naive(values):
    keys = np.asarray(values, dtype=np.float64)
    codes, n = vz.factorize(keys)
    ref_codes, ref_n = naive.factorize(keys)
    assert n == ref_n
    assert np.array_equal(_equality_partition(codes),
                          _equality_partition(ref_codes))


@settings(max_examples=60, deadline=None)
@given(_nan_floats, _nan_floats)
def test_joint_codes_nan_never_equal(left, right):
    la = np.asarray(left, dtype=np.float64)
    ra = np.asarray(right, dtype=np.float64)
    lc, rc, n = vz.joint_codes(la, ra)
    both_keys = np.concatenate([la, ra])
    both_codes = np.concatenate([lc, rc])
    for i in range(len(both_keys)):
        same_key = both_keys == both_keys[i]     # IEEE: NaN rows empty
        if np.isnan(both_keys[i]):
            assert np.count_nonzero(both_codes == both_codes[i]) == 1
        else:
            assert np.array_equal(same_key,
                                  both_codes == both_codes[i])
    assert len(both_codes) == 0 or both_codes.max() < n


def test_setops_nan_tails_follow_ieee_semantics():
    nan = float("nan")
    ab = bat_from_pairs("oid", "double", [(0, nan), (1, nan), (0, nan),
                                          (2, 1.5)])
    cd = bat_from_pairs("oid", "double", [(0, nan), (2, 1.5)])
    # no NaN BUN ever duplicates another, so unique keeps all of them
    assert len(ops.unique(ab)) == 4
    # ... none is a member of the other operand either
    diff = ops.difference(ab, cd)
    assert len(diff) == 3                        # only (2, 1.5) matches
    assert [h for h, _t in diff.to_pairs()] == [0, 1, 0]
    inter = ops.intersection(ab, cd)
    assert inter.to_pairs() == [(2, 1.5)]


def test_group_nan_tails_match_naive_partition():
    nan = float("nan")
    bat = bat_from_pairs("oid", "double",
                         [(0, nan), (1, 2.0), (2, nan), (3, 2.0)])
    bat.props = compute_props(bat)
    out = ops.group1(bat)
    groups = [g for _h, g in out.to_pairs()]
    assert groups[1] == groups[3]               # 2.0 == 2.0
    assert groups[0] != groups[2]               # NaN != NaN
    assert len(set(groups)) == 3


# ----------------------------------------------------------------------
# combine_codes: int64 overflow guard
# ----------------------------------------------------------------------
def test_combine_codes_plain_arithmetic_unchanged():
    combined = vz.combine_codes([3, 0, 3], [1, 2, 1], 10)
    assert list(combined) == [31, 2, 31]


def test_combine_codes_overflow_falls_back_to_pair_codes():
    # offset-coded domains from joint_codes can reach 2**40 per slot;
    # the mixed-radix product would wrap int64 and alias pairs
    high = np.asarray([2 ** 40, 2 ** 40, 1, 0], dtype=np.int64)
    low = np.asarray([0, 1, 0, 0], dtype=np.int64)
    n_low = 2 ** 40
    combined = vz.combine_codes(high, low, n_low)
    assert combined.dtype == np.int64
    assert combined.min() >= 0                  # no wrap-around
    # pair equality/inequality preserved, order = sorted (high, low)
    assert len(set(combined.tolist())) == 4
    assert list(np.argsort(combined)) == [3, 2, 0, 1]
    # without the guard this would alias: (2**40)*(2**40) wraps to 0
    wrapped = high * np.int64(n_low) + low
    assert wrapped.min() < 0 or len(set(wrapped.tolist())) < 4


def test_combine_codes_pair_keeps_sides_comparable_on_overflow():
    n_low = 2 ** 40
    left_high = np.asarray([2 ** 40, 5], dtype=np.int64)
    left_low = np.asarray([7, 3], dtype=np.int64)
    right_high = np.asarray([2 ** 40, 2 ** 40], dtype=np.int64)
    right_low = np.asarray([7, 8], dtype=np.int64)
    lc, rc, n = vz.combine_codes_pair(left_high, left_low,
                                      right_high, right_low, n_low)
    assert lc[0] == rc[0]                   # same (high, low) pair
    assert lc[0] != rc[1] and lc[1] not in (rc[0], rc[1])
    assert max(int(lc.max()), int(rc.max())) < n


def test_combine_codes_pair_no_overflow_matches_arithmetic():
    lc, rc, n = vz.combine_codes_pair([2, 0], [1, 1], [2], [1], 10)
    assert list(lc) == [21, 1] and list(rc) == [21]
    assert n == 30


def test_multimap_scalar_probes():
    mm = vz.MultiMap(_int_arr([5, 7, 5, 9]))
    assert list(mm.positions(5)) == [0, 2]
    assert mm.first(9) == 3
    assert mm.positions(42) == ()
    assert mm.first(42) is None


def test_multimap_dense_vs_sorted_agree():
    keys = _int_arr([3, 1, 4, 1, 5, 9, 2, 6, 5, 3])
    probes = _int_arr([1, 5, 8, -3, 9])
    dense = vz.MultiMap(keys)
    assert dense.starts is not None        # compact domain => dense
    sparse = vz.MultiMap(keys * (2 ** 40))  # spread out => binary search
    assert sparse.starts is None
    _assert_same(dense.match(probes), naive.join_match(probes, keys))
    _assert_same(sparse.match(probes * (2 ** 40)),
                 naive.join_match(probes * (2 ** 40), keys * (2 ** 40)))


# ----------------------------------------------------------------------
# operator-level differentials across atom types
# ----------------------------------------------------------------------
def _bat(pairs, head="oid", tail="int"):
    bat = bat_from_pairs(head, tail, pairs)
    bat.props = compute_props(bat)
    return bat


_heads = st.integers(0, 12)
_str_tail = st.sampled_from(["a", "b", "abc", "zz"])
_dbl_tail = st.floats(min_value=-8, max_value=8, width=16)
_int_tail = st.integers(-9, 9)


def _pairs(tail):
    return st.lists(st.tuples(_heads, tail), max_size=20)


@settings(max_examples=50, deadline=None)
@given(_pairs(_int_tail), _pairs(_str_tail))
def test_join_str_tail_spec(left_pairs, right_pairs):
    # int join column, string payload: var-sized tails must survive
    ab = _bat([(h, t) for h, t in left_pairs])
    cd = _bat([(h, s) for (h, _t), (_h2, s) in
               zip(right_pairs, right_pairs)], tail="string")
    out = ops.join(ab, cd)
    expected = sorted((a, d) for a, b in ab.to_pairs()
                      for c, d in cd.to_pairs() if b == c)
    assert sorted(out.to_pairs()) == expected
    verify(out)


@settings(max_examples=50, deadline=None)
@given(_pairs(_str_tail), _pairs(_str_tail))
def test_setops_str_tails_spec(left_pairs, right_pairs):
    ab = bat_from_pairs("oid", "string", left_pairs)
    cd = bat_from_pairs("oid", "string", right_pairs)
    diff = ops.difference(ab, cd).to_pairs()
    assert diff == [p for p in left_pairs
                    if p not in set(right_pairs)]
    inter = ops.intersection(ab, cd).to_pairs()
    seen = set()
    expected = []
    for p in left_pairs:
        if p in set(right_pairs) and p not in seen:
            seen.add(p)
            expected.append(p)
    assert inter == expected
    uniq = ops.unique(ab).to_pairs()
    first = []
    for p in left_pairs:
        if p not in first:
            first.append(p)
    assert uniq == first


@settings(max_examples=50, deadline=None)
@given(_pairs(_dbl_tail), _pairs(_dbl_tail))
def test_setops_double_tails_spec(left_pairs, right_pairs):
    # float tails must never be routed through integer offset coding
    ab = bat_from_pairs("oid", "double", left_pairs)
    cd = bat_from_pairs("oid", "double", right_pairs)
    diff = ops.difference(ab, cd).to_pairs()
    assert diff == [p for p in left_pairs if p not in set(right_pairs)]
    inter = {p for p in ops.intersection(ab, cd).to_pairs()}
    assert inter == set(left_pairs) & set(right_pairs)


def test_joint_codes_float_not_truncated():
    from repro.monet import vectorized as vz
    la = np.asarray([2.5, 2.0], dtype=np.float64)
    ra = np.asarray([2.0], dtype=np.float64)
    lc, rc, _n = vz.joint_codes(la, ra)
    assert lc[0] != rc[0] and lc[1] == rc[0]


@settings(max_examples=50, deadline=None)
@given(_pairs(_dbl_tail))
def test_aggregate_double_spec(pairs):
    bat = bat_from_pairs("oid", "double", pairs)
    for func in ("sum", "count", "min", "max"):
        out = dict(ops.set_aggregate(func, bat).to_pairs())
        expected = {}
        for a, b in pairs:
            bucket = expected.setdefault(a, [])
            bucket.append(b)
        for key, bucket in expected.items():
            want = {"sum": sum(bucket), "count": len(bucket),
                    "min": min(bucket), "max": max(bucket)}[func]
            assert out[key] == pytest.approx(want)


def test_aggregate_sum_exact_beyond_float():
    # partial sums past 2**53 must not round through float64
    big = 2 ** 61
    bat = bat_from_pairs("oid", "long",
                         [(1, big), (1, 3), (2, big), (2, -1)])
    out = dict(ops.set_aggregate("sum", bat).to_pairs())
    assert out == {1: big + 3, 2: big - 1}


@settings(max_examples=50, deadline=None)
@given(_pairs(_int_tail), _pairs(_int_tail))
def test_semijoin_void_heads(left_pairs, right_pairs):
    # void (virtual dense) heads take the fixed-width membership kernel
    ab = bat_dense_head(column_from_values(
        "int", [t for _h, t in left_pairs]))
    cd = _bat(right_pairs)
    out = ops.semijoin(ab, cd)
    heads = {c for c, _d in cd.to_pairs()}
    assert out.to_pairs() == [p for p in ab.to_pairs()
                              if p[0] in heads]


@settings(max_examples=50, deadline=None)
@given(_pairs(_int_tail))
def test_group_all_duplicates_and_empty(pairs):
    bat = _bat([(h, 4) for h, _t in pairs])   # all-duplicate tails
    out = ops.group1(bat)
    assert len(out) == len(bat)
    assert len({g for _h, g in out.to_pairs()}) <= 1
    from repro.monet import empty_bat
    assert len(ops.group1(empty_bat("oid", "int"))) == 0


def test_pairjoin_str_keys_and_missing_heads():
    l1 = _bat([(1, 10), (2, 20), (3, 10)])
    l2 = bat_from_pairs("oid", "string", [(1, "x"), (2, "x"), (3, "y")])
    l2.props = compute_props(l2)
    r1 = _bat([(7, 10), (8, 10), (9, 20)])
    # right side misses head 9 in its second key column
    r2 = bat_from_pairs("oid", "string", [(7, "x"), (8, "y")])
    r2.props = compute_props(r2)
    out = ops.pairjoin([l1, l2, r1, r2])
    # (1,(10,x))->(7,(10,x)); (3,(10,y))->(8,(10,y)); 9 has a missing
    # key component, which only matches another missing component
    assert sorted(out.to_pairs()) == [(1, 7), (3, 8)]


def test_hashjoin_reuses_accelerator():
    from repro.monet.accelerators.hashidx import hash_of
    from repro.monet.optimizer import get_optimizer
    ab = _bat([(1, 10), (2, 20), (3, 10)])
    cd = bat_from_pairs("oid", "int", [(20, 5), (10, 4)])
    cd.props = compute_props(cd)
    plain = ops.join(ab, cd).to_pairs()
    index = hash_of(cd, "head")            # prebuild the accelerator
    assert index.positions(20) is not None
    accelerated = ops.join(ab, cd).to_pairs()
    assert get_optimizer().last["join"] == "hashjoin"
    assert accelerated == plain == [(1, 4), (2, 5), (3, 4)]
