"""Wire protocol units: framing, the value codec, the caches.

The codec contract under test is *checksum-exact round-tripping*: for
every value the executor can ship, ``decode(json(encode(v)))`` must
carry the same sha1 result checksum as ``v`` — that is what lets the
client re-verify a served payload byte-for-byte.  The binary columnar
wire and the spool-file path are held to the identical contract: any
encoding, any transport, same digest.
"""

import json
import socket
import threading

import numpy as np
import pytest

from repro.errors import FrameTooLargeError, ProtocolError, SpoolError
from repro.moa.values import Ref, Row
from repro.monet.mil import MILProgram, Var
from repro.monet.multiproc import result_checksum
from repro.server import (LRUCache, ResultCache, decode_program,
                          decode_value, encode_program, encode_value,
                          payload_nbytes, read_spooled_payload,
                          recv_frame, send_binary_frame, send_frame,
                          write_spooled_payload)
from repro.server import protocol as proto


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------
def test_frame_roundtrip():
    left, right = socket.socketpair()
    try:
        payload = {"type": "moa", "query": "count(Item)", "id": 7}
        send_frame(left, payload)
        assert recv_frame(right) == payload
        send_frame(right, {"ok": True})
        assert recv_frame(left) == {"ok": True}
    finally:
        left.close()
        right.close()


def test_frame_eof_and_truncation():
    left, right = socket.socketpair()
    left.close()
    assert recv_frame(right) is None           # clean EOF -> None
    right.close()

    left, right = socket.socketpair()
    try:
        left.sendall(b"\x00\x00\x00\x10partial")   # 16 promised, 7 sent
        left.close()
        with pytest.raises(ProtocolError):
            recv_frame(right)
    finally:
        right.close()


def test_frame_size_guard():
    left, right = socket.socketpair()
    try:
        left.sendall((proto.MAX_FRAME_BYTES + 1).to_bytes(4, "big"))
        with pytest.raises(ProtocolError):
            recv_frame(right)
    finally:
        left.close()
        right.close()


def test_undecodable_frame():
    left, right = socket.socketpair()
    try:
        body = b"\xff\xfenot json"
        left.sendall(len(body).to_bytes(4, "big") + body)
        with pytest.raises(ProtocolError):
            recv_frame(right)
    finally:
        left.close()
        right.close()


# ----------------------------------------------------------------------
# value codec
# ----------------------------------------------------------------------
CODEC_VALUES = [
    None,
    True,
    42,
    -1.5,
    float("nan"),
    float("inf"),
    "clerk#000001",
    b"\x00\x01raw",
    np.arange(5, dtype=np.int64),
    np.asarray([1.5, float("nan"), float("-inf")]),
    np.asarray(["a", "bb", None], dtype=object),
    [1, "two", [3.0, None]],
    (1, (2, 3)),
    {"kind": "value", "value": [1.0, 2.0]},
    {"kind": "bat", "head": np.arange(3), "tail": np.asarray([9, 8, 7])},
    {1: "int-keyed", 2: "also"},
    {(2, 3): "tuple-keyed"},
    {"__nd__": "marker-collision"},
    Row([("region", "EUROPE"), ("total", 12.5)]),
    Ref("Order", 101),
    [Row([("x", Ref("Item", 3)), ("ys", (1, 2))])],
]


@pytest.mark.parametrize("value", CODEC_VALUES,
                         ids=[repr(v)[:40] for v in CODEC_VALUES])
def test_codec_checksum_exact(value):
    # through real JSON text, exactly like the socket path
    wire = json.loads(json.dumps(encode_value(value)))
    decoded = decode_value(wire)
    assert result_checksum(decoded) == result_checksum(value)


def test_codec_rejects_unknown_types():
    with pytest.raises(ProtocolError):
        encode_value(object())


def test_ndarray_roundtrip_is_bit_exact():
    array = np.asarray([0.1, 1e-300, -0.0, 3.141592653589793])
    decoded = decode_value(json.loads(json.dumps(encode_value(array))))
    assert decoded.dtype == array.dtype
    assert decoded.tobytes() == array.tobytes()


# ----------------------------------------------------------------------
# binary columnar frames
# ----------------------------------------------------------------------
#: Codec edge cases the binary wire must get right beyond the shared
#: list: empty buffers, non-contiguous views, empty object arrays, and
#: a plain dict colliding with the buffer-marker key.
BINARY_EDGE_VALUES = [
    np.empty(0, dtype=np.int64),
    np.empty(0, dtype=np.float64).reshape(0, 3),
    np.arange(20, dtype=np.float64)[::2],          # sliced: strided
    np.arange(12, dtype=np.int32).reshape(3, 4).T,  # transposed view
    np.asarray([], dtype=object),
    {"__ndbuf__": "marker-collision"},
    {"head": np.arange(4), "tail": np.arange(4)},   # dedup pair
]

BINARY_VALUES = CODEC_VALUES + BINARY_EDGE_VALUES


@pytest.mark.parametrize("value", BINARY_VALUES,
                         ids=[repr(v)[:40] for v in BINARY_VALUES])
def test_binary_message_checksum_exact(value):
    blob = proto.encode_binary_message(value)
    decoded = decode_value(proto.decode_binary_message(blob))
    assert result_checksum(decoded) == result_checksum(value)


@pytest.mark.parametrize("value", BINARY_VALUES,
                         ids=[repr(v)[:40] for v in BINARY_VALUES])
def test_json_and_binary_wires_agree(value):
    """The differential contract: both encodings of the same value
    decode to the same sha1 digest — a client cannot tell (and need
    not know) which wire served it."""
    via_json = decode_value(json.loads(json.dumps(encode_value(value))))
    via_binary = decode_value(proto.decode_binary_message(
        proto.encode_binary_message(value)))
    assert result_checksum(via_json) == result_checksum(via_binary)


def test_binary_frame_socket_roundtrip_zero_copy():
    left, right = socket.socketpair()
    try:
        message = {"type": "result",
                   "payload": {"kind": "bat",
                               "head": np.arange(1000),
                               "tail": np.arange(1000) * 0.5},
                   "checksum": "abc"}
        metered = []
        send_binary_frame(left, message)
        received = recv_frame(right, meter=metered.append)
        decoded = decode_value(received["payload"])
        assert decoded["head"].tolist() == list(range(1000))
        # zero-copy decode: the arrays are read-only views over the
        # received bytes, not copies
        assert not received["payload"]["head"].flags.writeable
        assert metered and metered[0] > 2 * 8000    # both raw buffers
    finally:
        left.close()
        right.close()


def test_binary_buffers_are_content_deduplicated():
    sink = proto.BufferSink()
    array = np.arange(512, dtype=np.int64)
    message = encode_value({"a": array, "b": array.copy(),
                            "c": array * 2}, sink=sink)
    assert len(sink.buffers) == 2           # a == b share, c differs
    assert sink.dedup_hits == 1
    assert message["a"]["__ndbuf__"] == message["b"]["__ndbuf__"]
    assert message["c"]["__ndbuf__"] != message["a"]["__ndbuf__"]
    # and the deduplicated message still decodes checksum-exact
    blob = proto.encode_binary_message({"a": array, "b": array.copy()})
    decoded = decode_value(proto.decode_binary_message(blob))
    assert result_checksum(decoded) == result_checksum(
        {"a": array, "b": array})


def test_oversize_binary_frame_is_refused_before_allocation():
    left, right = socket.socketpair()
    try:
        word = proto._BINARY_FLAG | (proto.MAX_FRAME_BYTES + 1)
        left.sendall(word.to_bytes(4, "big"))
        with pytest.raises(FrameTooLargeError):
            recv_frame(right)
    finally:
        left.close()
        right.close()


def test_corrupt_binary_payloads_raise_typed():
    # header length word overrunning the payload
    with pytest.raises(ProtocolError):
        proto.decode_binary_message(b"\x00\x00\xff\xff{}")
    # announced buffer overrunning the payload
    header = json.dumps({"msg": {"__ndbuf__": 0, "dtype": "<i8",
                                 "shape": [100]},
                         "buffers": [800]}).encode()
    blob = len(header).to_bytes(4, "big") + header + b"\x00" * 16
    with pytest.raises(ProtocolError):
        proto.decode_binary_message(blob)
    # not a header at all
    with pytest.raises(ProtocolError):
        proto.decode_binary_message(b"\x00\x00\x00\x04asdf")


def test_unresolved_buffer_marker_rejected_in_json_context():
    with pytest.raises(ProtocolError):
        decode_value({"__ndbuf__": 0, "dtype": "<i8", "shape": [1]})


def test_payload_nbytes_is_exact_for_array_buffers():
    assert payload_nbytes(np.arange(100, dtype=np.int64)) == 800
    assert payload_nbytes(np.empty(0)) == 0
    assert payload_nbytes("abcd") == 4
    assert payload_nbytes(b"xyz") == 3
    weight = payload_nbytes({"kind": "bat", "head": np.arange(10),
                             "tail": np.arange(10) * 2.0})
    assert weight >= 160                    # dominated by the buffers


# ----------------------------------------------------------------------
# spooled payloads
# ----------------------------------------------------------------------
def test_spool_roundtrip_and_unlink(tmp_path):
    path = tmp_path / "reply-0.bin"
    value = {"kind": "bat", "head": np.arange(2048),
             "tail": np.arange(2048) % 7}
    nbytes = write_spooled_payload(path, value)
    assert path.stat().st_size == nbytes
    decoded = read_spooled_payload(path, expected_bytes=nbytes)
    assert result_checksum(decode_value(decoded)) \
        == result_checksum(value)
    assert not decoded["head"].flags.writeable     # mmap view
    assert not path.exists()                       # unlinked after read


def test_spool_missing_file_raises_retryable_spool_error(tmp_path):
    with pytest.raises(SpoolError):
        read_spooled_payload(tmp_path / "vanished.bin")
    from repro.errors import is_retryable
    assert is_retryable(SpoolError) is True


def test_spool_truncation_and_length_mismatch_raise_typed(tmp_path):
    path = tmp_path / "reply-1.bin"
    nbytes = write_spooled_payload(path, {"col": np.arange(1000)})
    # announced length contradicts the file
    with pytest.raises(SpoolError):
        read_spooled_payload(path, expected_bytes=nbytes + 1,
                             unlink=False)
    # physically truncated file: the decode itself fails typed
    with open(path, "r+b") as handle:
        handle.truncate(nbytes // 2)
    with pytest.raises(SpoolError):
        read_spooled_payload(path)


# ----------------------------------------------------------------------
# MIL program codec
# ----------------------------------------------------------------------
def test_program_roundtrip():
    program = MILProgram()
    selected = program.emit("select", [Var("Item_quantity"), 10, 40])
    program.emit("multiplex", [selected, 2.0], fn="*", target="scaled")
    program.emit("aggr_all", [Var("scaled")], fn="sum", target="total")
    decoded = decode_program(json.loads(json.dumps(
        encode_program(program))))
    assert decoded.render() == program.render()


def test_program_codec_rejects_malformed():
    with pytest.raises(ProtocolError):
        decode_program({"not": "a program"})
    with pytest.raises(ProtocolError):
        decode_program({"stmts": [{"target": "x"}]})


# ----------------------------------------------------------------------
# LRU cache
# ----------------------------------------------------------------------
def test_lru_eviction_order_and_stats():
    cache = LRUCache(2)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1          # refreshes a's recency
    cache.put("c", 3)                   # evicts b, the LRU entry
    assert cache.get("b") is None
    assert cache.get("a") == 1
    assert cache.get("c") == 3
    snap = cache.snapshot()
    assert snap["size"] == 2
    assert snap["evictions"] == 1
    assert snap["hits"] == 3
    assert snap["misses"] == 1
    assert 0 < snap["hit_rate"] < 1


def test_lru_capacity_zero_disables():
    cache = LRUCache(0)
    cache.put("a", 1)
    assert cache.get("a") is None
    assert len(cache) == 0
    assert cache.stats.misses == 1


def test_lru_invalidate_predicate():
    cache = LRUCache(8)
    for generation in (1, 2):
        for name in ("x", "y"):
            cache.put((name, generation), name * generation)
    assert cache.invalidate(lambda key: key[1] < 2) == 2
    assert len(cache) == 2
    assert cache.get(("x", 2)) == "xx"
    assert cache.invalidate() == 2
    assert len(cache) == 0


def test_lru_invalidate_counts_evictions_and_invalidations():
    """Regression: invalidate() used to drop entries without touching
    the counters, so generation-bump sweeps were invisible in the
    server stats."""
    cache = LRUCache(8)
    for generation in (1, 2):
        for name in ("x", "y"):
            cache.put((name, generation), name)
    assert cache.invalidate(lambda key: key[1] < 2) == 2
    snap = cache.snapshot()
    assert snap["evictions"] == 2
    assert snap["invalidations"] == 2
    cache.invalidate()
    snap = cache.snapshot()
    assert snap["evictions"] == 4
    assert snap["invalidations"] == 4


# ----------------------------------------------------------------------
# the byte-weighted result cache
# ----------------------------------------------------------------------
def _bat(base, n=64):
    return {"kind": "bat", "head": np.arange(n) + base,
            "tail": (np.arange(n) + base) * 0.5}


def test_result_cache_hit_roundtrip_and_counters():
    cache = ResultCache(1 << 20)
    value = _bat(0)
    entry = cache.put((1, "q"), "sha", value, {"pid": 7})
    assert entry is not None
    hit = cache.get((1, "q"))
    response = hit.response()
    assert response["type"] == "result"
    assert response["checksum"] == "sha"
    assert response["pid"] == 7
    assert result_checksum(response["payload"]) \
        == result_checksum(value)
    assert cache.get((1, "other")) is None
    snap = cache.snapshot()
    assert snap["hits"] == 1 and snap["misses"] == 1
    assert 0 < snap["bytes"] <= snap["peak_bytes"] \
        <= snap["budget_bytes"]


def test_result_cache_responses_are_mutation_isolated():
    """Regression for the serving-path shallow copy: the cached entry
    and every served response used to share the same nested payload
    structure, so one client mutating its reply corrupted everyone
    else's."""
    cache = ResultCache(1 << 20)
    source = {"kind": "value", "value": [1, 2, 3], "cols": _bat(5)}
    cache.put((1, "q"), "sha", source, {})
    first = cache.get((1, "q")).response()
    first["payload"]["value"].append("poison")
    first["payload"].clear()
    # the source value the service handed in is also out of reach
    source["value"].append("poison")
    second = cache.get((1, "q")).response()
    assert second["payload"]["value"] == [1, 2, 3]
    assert not second["payload"]["cols"]["head"].flags.writeable


def test_result_cache_source_array_mutation_cannot_corrupt():
    cache = ResultCache(1 << 20)
    column = np.arange(32, dtype=np.int64)
    cache.put((1, "q"), "sha", {"col": column}, {})
    column[0] = -999
    assert cache.get((1, "q")).response()["payload"]["col"][0] == 0


def test_result_cache_byte_budget_is_a_hard_ceiling():
    budget = 4096
    cache = ResultCache(budget)
    for index in range(16):
        cache.put((1, "q%d" % index), "sha", _bat(index * 100), {})
        assert cache.bytes <= budget
    snap = cache.snapshot()
    assert snap["evictions"] >= 1
    assert snap["bytes"] <= budget and snap["peak_bytes"] <= budget
    # a single value larger than the whole budget is never admitted
    assert cache.put((1, "big"), "sha",
                     {"col": np.zeros(budget, dtype=np.int64)},
                     {}) is None
    assert cache.get((1, "big")) is None
    assert cache.snapshot()["bytes"] <= budget


def test_result_cache_dedups_identical_buffers_across_entries():
    cache = ResultCache(1 << 20)
    column = np.arange(4096, dtype=np.int64)     # 32 KiB
    cache.put((1, "a"), "s1", {"col": column}, {})
    before = cache.bytes
    cache.put((1, "b"), "s2", {"col": column.copy()}, {})
    snap = cache.snapshot()
    assert snap["size"] == 2
    assert snap["unique_buffers"] == 1
    assert snap["dedup_hits"] == 1
    # the second replica charged only structural overhead, not 32 KiB
    assert cache.bytes - before < 1024
    # evicting one replica keeps the shared buffer alive for the other
    assert cache.invalidate(lambda key: key[1] == "a") == 1
    assert cache.get((1, "b")).response()["payload"]["col"][-1] == 4095
    assert cache.snapshot()["unique_buffers"] == 1


def test_result_cache_ttl_expires_lazily():
    clock = [0.0]
    cache = ResultCache(1 << 20, ttl_s=10.0, clock=lambda: clock[0])
    cache.put((1, "q"), "sha", _bat(0), {})
    clock[0] = 9.0
    assert cache.get((1, "q")) is not None
    clock[0] = 11.0
    assert cache.get((1, "q")) is None
    snap = cache.snapshot()
    assert snap["expirations"] == 1
    assert snap["bytes"] == 0           # expiry returned the bytes


def test_result_cache_generation_invalidation():
    cache = ResultCache(1 << 20)
    cache.put((1, "q"), "s1", _bat(0), {})
    cache.put((2, "q"), "s2", _bat(1), {})
    dropped = cache.invalidate(lambda key: key[0] == 1)
    assert dropped == 1
    assert cache.get((1, "q")) is None
    assert cache.get((2, "q")) is not None
    snap = cache.snapshot()
    assert snap["invalidations"] == 1


def test_result_cache_zero_budget_disables():
    cache = ResultCache(0)
    assert cache.put((1, "q"), "sha", _bat(0), {}) is None
    assert cache.get((1, "q")) is None
    assert len(cache) == 0


def test_result_cache_is_thread_safe_under_contention():
    cache = ResultCache(64 * 1024)
    errors = []

    def hammer(seed):
        try:
            for index in range(150):
                key = (seed, index % 10)
                cache.put(key, "sha", _bat(index), {"t": seed})
                entry = cache.get((seed, (index * 7) % 10))
                if entry is not None:
                    entry.response()
        except Exception as exc:        # pragma: no cover
            errors.append(exc)

    threads = [threading.Thread(target=hammer, args=(t,))
               for t in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    assert cache.bytes <= 64 * 1024


def test_lru_is_thread_safe_under_contention():
    cache = LRUCache(16)
    errors = []

    def hammer(seed):
        try:
            for index in range(300):
                cache.put((seed, index % 20), index)
                cache.get((seed, (index * 7) % 20))
        except Exception as exc:        # pragma: no cover
            errors.append(exc)

    threads = [threading.Thread(target=hammer, args=(t,))
               for t in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    assert len(cache) <= 16
