"""Wire protocol units: framing, the value codec, the LRU cache.

The codec contract under test is *checksum-exact round-tripping*: for
every value the executor can ship, ``decode(json(encode(v)))`` must
carry the same sha1 result checksum as ``v`` — that is what lets the
client re-verify a served payload byte-for-byte.
"""

import json
import socket
import threading

import numpy as np
import pytest

from repro.errors import ProtocolError
from repro.moa.values import Ref, Row
from repro.monet.mil import MILProgram, Var
from repro.monet.multiproc import result_checksum
from repro.server import (LRUCache, decode_program, decode_value,
                          encode_program, encode_value, recv_frame,
                          send_frame)
from repro.server import protocol as proto


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------
def test_frame_roundtrip():
    left, right = socket.socketpair()
    try:
        payload = {"type": "moa", "query": "count(Item)", "id": 7}
        send_frame(left, payload)
        assert recv_frame(right) == payload
        send_frame(right, {"ok": True})
        assert recv_frame(left) == {"ok": True}
    finally:
        left.close()
        right.close()


def test_frame_eof_and_truncation():
    left, right = socket.socketpair()
    left.close()
    assert recv_frame(right) is None           # clean EOF -> None
    right.close()

    left, right = socket.socketpair()
    try:
        left.sendall(b"\x00\x00\x00\x10partial")   # 16 promised, 7 sent
        left.close()
        with pytest.raises(ProtocolError):
            recv_frame(right)
    finally:
        right.close()


def test_frame_size_guard():
    left, right = socket.socketpair()
    try:
        left.sendall((proto.MAX_FRAME_BYTES + 1).to_bytes(4, "big"))
        with pytest.raises(ProtocolError):
            recv_frame(right)
    finally:
        left.close()
        right.close()


def test_undecodable_frame():
    left, right = socket.socketpair()
    try:
        body = b"\xff\xfenot json"
        left.sendall(len(body).to_bytes(4, "big") + body)
        with pytest.raises(ProtocolError):
            recv_frame(right)
    finally:
        left.close()
        right.close()


# ----------------------------------------------------------------------
# value codec
# ----------------------------------------------------------------------
CODEC_VALUES = [
    None,
    True,
    42,
    -1.5,
    float("nan"),
    float("inf"),
    "clerk#000001",
    b"\x00\x01raw",
    np.arange(5, dtype=np.int64),
    np.asarray([1.5, float("nan"), float("-inf")]),
    np.asarray(["a", "bb", None], dtype=object),
    [1, "two", [3.0, None]],
    (1, (2, 3)),
    {"kind": "value", "value": [1.0, 2.0]},
    {"kind": "bat", "head": np.arange(3), "tail": np.asarray([9, 8, 7])},
    {1: "int-keyed", 2: "also"},
    {(2, 3): "tuple-keyed"},
    {"__nd__": "marker-collision"},
    Row([("region", "EUROPE"), ("total", 12.5)]),
    Ref("Order", 101),
    [Row([("x", Ref("Item", 3)), ("ys", (1, 2))])],
]


@pytest.mark.parametrize("value", CODEC_VALUES,
                         ids=[repr(v)[:40] for v in CODEC_VALUES])
def test_codec_checksum_exact(value):
    # through real JSON text, exactly like the socket path
    wire = json.loads(json.dumps(encode_value(value)))
    decoded = decode_value(wire)
    assert result_checksum(decoded) == result_checksum(value)


def test_codec_rejects_unknown_types():
    with pytest.raises(ProtocolError):
        encode_value(object())


def test_ndarray_roundtrip_is_bit_exact():
    array = np.asarray([0.1, 1e-300, -0.0, 3.141592653589793])
    decoded = decode_value(json.loads(json.dumps(encode_value(array))))
    assert decoded.dtype == array.dtype
    assert decoded.tobytes() == array.tobytes()


# ----------------------------------------------------------------------
# MIL program codec
# ----------------------------------------------------------------------
def test_program_roundtrip():
    program = MILProgram()
    selected = program.emit("select", [Var("Item_quantity"), 10, 40])
    program.emit("multiplex", [selected, 2.0], fn="*", target="scaled")
    program.emit("aggr_all", [Var("scaled")], fn="sum", target="total")
    decoded = decode_program(json.loads(json.dumps(
        encode_program(program))))
    assert decoded.render() == program.render()


def test_program_codec_rejects_malformed():
    with pytest.raises(ProtocolError):
        decode_program({"not": "a program"})
    with pytest.raises(ProtocolError):
        decode_program({"stmts": [{"target": "x"}]})


# ----------------------------------------------------------------------
# LRU cache
# ----------------------------------------------------------------------
def test_lru_eviction_order_and_stats():
    cache = LRUCache(2)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1          # refreshes a's recency
    cache.put("c", 3)                   # evicts b, the LRU entry
    assert cache.get("b") is None
    assert cache.get("a") == 1
    assert cache.get("c") == 3
    snap = cache.snapshot()
    assert snap["size"] == 2
    assert snap["evictions"] == 1
    assert snap["hits"] == 3
    assert snap["misses"] == 1
    assert 0 < snap["hit_rate"] < 1


def test_lru_capacity_zero_disables():
    cache = LRUCache(0)
    cache.put("a", 1)
    assert cache.get("a") is None
    assert len(cache) == 0
    assert cache.stats.misses == 1


def test_lru_invalidate_predicate():
    cache = LRUCache(8)
    for generation in (1, 2):
        for name in ("x", "y"):
            cache.put((name, generation), name * generation)
    assert cache.invalidate(lambda key: key[1] < 2) == 2
    assert len(cache) == 2
    assert cache.get(("x", 2)) == "xx"
    assert cache.invalidate() == 2
    assert len(cache) == 0


def test_lru_is_thread_safe_under_contention():
    cache = LRUCache(16)
    errors = []

    def hammer(seed):
        try:
            for index in range(300):
                cache.put((seed, index % 20), index)
                cache.get((seed, (index * 7) % 20))
        except Exception as exc:        # pragma: no cover
            errors.append(exc)

    threads = [threading.Thread(target=hammer, args=(t,))
               for t in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    assert len(cache) <= 16
