"""Live query-service tests: sockets, concurrency, caches, pinning.

A real :class:`QueryServer` runs on an ephemeral localhost port over
a saved tiny TPC-D catalog; clients connect over TCP exactly like the
CLI would.  The core contract everywhere: a served result's sha1
checksum equals serial execution of the same query (the client
re-verifies each decoded payload against the shipped digest on its
own, so every assertion below rides on verified payloads).
"""

import multiprocessing
import threading
import time

import pytest

from repro import faults
from repro.errors import (ProtocolError, QueryTimeoutError,
                          ServerError, ServerOverloadedError)
from repro.monet import MILProgram, MonetKernel, Var
from repro.monet.multiproc import (result_checksum, run_program_serial,
                                   ship_value)
from repro.server import QueryClient, QueryServer, QueryService
from repro.tpcd import QUERIES, load_tpcd, open_tpcd
from repro.tpcd.loader import save_tpcd

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()
pytestmark = pytest.mark.skipif(
    not HAVE_FORK, reason="server tests fork worker pools (spawn "
                          "re-imports per worker, too slow for tier-1)")


@pytest.fixture(scope="module")
def db_dir(tiny_tpcd, tmp_path_factory):
    path = tmp_path_factory.mktemp("servedb") / "db"
    load_tpcd(tiny_tpcd, db_dir=path)
    return path


@pytest.fixture(scope="module")
def serial_checksums(db_dir):
    db, _report = open_tpcd(db_dir)
    return {number: result_checksum(ship_value(QUERIES[number].run(db)))
            for number in sorted(QUERIES)}


@pytest.fixture(scope="module")
def server(db_dir):
    service = QueryService(db_dir, procs=2,
                           result_cache_bytes=1 << 20)
    with QueryServer(service) as srv:
        yield srv
    service.close()


def _connect(server):
    host, port = server.address
    return QueryClient(host, port)


# ----------------------------------------------------------------------
# basic requests
# ----------------------------------------------------------------------
def test_hello_and_ping(server):
    with _connect(server) as client:
        assert client.protocol == 1
        assert client.generation == 1
        assert client.ping() == 1


def test_tpcd_query_checksum_and_value(server, serial_checksums,
                                       tiny_tpcd_db):
    with _connect(server) as client:
        reply = client.tpcd(6)
        assert reply.checksum == serial_checksums[6]
        assert reply.value == pytest.approx(QUERIES[6].run(tiny_tpcd_db))
        assert reply.generation == 1
        assert reply.elapsed_ms >= 0.0
        assert reply.service_ms >= reply.elapsed_ms


def test_tpcd_param_overrides_change_the_result(server):
    with _connect(server) as client:
        base = client.tpcd(6)
        widened = client.tpcd(6, params={"qty": 100})
        assert widened.checksum != base.checksum


def test_moa_text_query_matches_query_driver(server, serial_checksums):
    with _connect(server) as client:
        reply = client.moa(QUERIES[1].texts()[0])
        assert reply.checksum == serial_checksums[1]
        rows = reply.value
        assert rows and hasattr(rows[0], "names")    # decoded Rows


def test_mil_program_over_the_wire(server, db_dir):
    program = MILProgram()
    selected = program.emit("select", [Var("Item_quantity"), 10, 40])
    joined = program.emit("join", [selected,
                                   Var("Item_extendedprice")])
    program.emit("aggr_all", [joined], fn="sum", target="total")
    kernel = MonetKernel.open(db_dir)
    _env, expected = run_program_serial(kernel, program, ["total"])
    with _connect(server) as client:
        reply = client.mil(program, ["total"])
        assert reply.checksum == expected
        assert "total" in reply.value


def test_malformed_requests_raise_typed_errors(server):
    with _connect(server) as client:
        with pytest.raises(ProtocolError):
            client.moa("")
        with pytest.raises(ServerError):
            client.tpcd(999)             # unknown query number
        # the connection survives an error frame
        assert client.ping() == 1


def test_moa_syntax_error_is_typed_and_non_fatal(server):
    from repro.errors import MOAError
    with _connect(server) as client:
        with pytest.raises(MOAError):
            client.moa("select[((((Item)")
        assert client.ping() == 1


# ----------------------------------------------------------------------
# the SQL front-end over the wire
# ----------------------------------------------------------------------
def test_sql_over_the_wire_matches_the_moa_path(server,
                                                serial_checksums):
    from repro.sql.suite import sql_text
    with _connect(server) as client:
        for number in (1, 3, 6):
            reply = client.sql(sql_text(number))
            assert reply.checksum == serial_checksums[number]


def test_sql_served_on_both_wire_formats(server, serial_checksums):
    from repro.sql.suite import sql_text
    host, port = server.address
    checksums = {}
    for wire in ("json", "binary"):
        with QueryClient(host, port, wire=wire) as client:
            assert client.wire == wire
            checksums[wire] = client.sql(sql_text(3)).checksum
    assert checksums["json"] == checksums["binary"] \
        == serial_checksums[3]


def test_sql_prepared_plans_are_cached_per_worker(server):
    from repro.sql.suite import sql_text
    text = sql_text(6)
    with _connect(server) as client:
        procs = server.service.procs
        # pigeonhole: more submissions than workers guarantees some
        # worker sees the identical text twice
        replies = [client.sql(text) for _ in range(procs + 1)]
        assert any(r.plan_cached or r.result_cached for r in replies)


def test_sql_parse_error_is_typed_with_position(server):
    from repro.errors import SqlParseError
    with _connect(server) as client:
        with pytest.raises(SqlParseError) as err:
            client.sql("select frum lineitem")
        assert "line 1, column" in str(err.value)
        assert client.ping() == 1           # the connection survives


def test_sql_unsupported_is_typed_and_non_fatal(server):
    from repro.errors import SqlUnsupportedError
    with _connect(server) as client:
        with pytest.raises(SqlUnsupportedError):
            client.sql("select rank() over (order by l_quantity) "
                       "from lineitem")
        with pytest.raises(ProtocolError):
            client.sql("   ")               # no query text at all
        assert client.ping() == 1


# ----------------------------------------------------------------------
# concurrency: >= 4 clients over the full query set
# ----------------------------------------------------------------------
def test_four_concurrent_clients_full_query_set(server,
                                                serial_checksums):
    failures = []

    def client_loop(tid):
        try:
            with _connect(server) as client:
                for number in sorted(QUERIES):
                    reply = client.tpcd(number)
                    assert reply.checksum == serial_checksums[number], \
                        "client %d diverged on Q%d" % (tid, number)
        except BaseException as exc:     # noqa: BLE001
            failures.append((tid, exc))

    threads = [threading.Thread(target=client_loop, args=(tid,))
               for tid in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not failures, failures


# ----------------------------------------------------------------------
# caches
# ----------------------------------------------------------------------
def test_plan_cache_hits_are_observable(db_dir, serial_checksums):
    # a dedicated single-worker service: the second identical Moa text
    # must land on the same (only) worker and hit its plan cache
    service = QueryService(db_dir, procs=1, result_cache_bytes=0)
    with QueryServer(service) as srv:
        with _connect(srv) as client:
            text = QUERIES[3].texts()[0]
            first = client.moa(text)
            second = client.moa(text)
            assert first.checksum == second.checksum \
                == serial_checksums[3]
            assert first.plan_cached is False
            assert second.plan_cached is True
            stats = client.stats()
    service.close()
    plan = stats["plan_cache"]
    assert plan["hits"] >= 1
    assert plan["misses"] >= 1
    assert 0.0 < plan["hit_rate"] < 1.0


def test_result_cache_short_circuits(db_dir, serial_checksums):
    service = QueryService(db_dir, procs=1,
                           result_cache_bytes=1 << 20)
    with QueryServer(service) as srv:
        with _connect(srv) as client:
            first = client.tpcd(12)
            second = client.tpcd(12)
            assert first.result_cached is False
            assert second.result_cached is True
            assert second.checksum == first.checksum \
                == serial_checksums[12]
            stats = client.stats()
    service.close()
    assert stats["result_cache"]["hits"] == 1
    assert stats["counters"]["result_cache_hits"] == 1


def test_result_cache_hits_cannot_be_corrupted_by_clients(db_dir):
    """Regression for the serving-path shallow copy: every served
    response used to share its nested payload with the cached entry,
    so one caller mutating a reply poisoned later hits."""
    service = QueryService(db_dir, procs=1,
                           result_cache_bytes=1 << 20)
    try:
        with service.session() as session:
            request = {"type": "tpcd", "number": 1}
            first = session.execute(request)
            expected = first["checksum"]
            # trash the served structures in place
            first["payload"].clear()
            first.clear()
            second = session.execute(request)
            assert second["result_cached"] is True
            assert second["checksum"] == expected
            assert result_checksum(second["payload"]) == expected
    finally:
        service.close()


def test_requests_equal_results_plus_errors_under_hits(db_dir):
    """Regression: ``results`` was only counted on the cache-miss
    path, so the counter identity broke as soon as the result cache
    answered anything."""
    service = QueryService(db_dir, procs=1,
                           result_cache_bytes=1 << 20)
    with QueryServer(service) as srv:
        with _connect(srv) as client:
            for _ in range(3):
                client.tpcd(6)
            with pytest.raises(ServerError):
                client.tpcd(999)
            counters = client.stats()["counters"]
    service.close()
    assert counters["result_cache_hits"] == 2, counters
    assert counters["requests"] == 4, counters
    assert counters["requests"] \
        == counters["results"] + counters["errors"], counters
    assert counters["result_bytes"] > 0, counters


def test_result_cache_stays_within_budget_and_invalidates(db_dir):
    service = QueryService(db_dir, procs=1,
                           result_cache_bytes=1 << 20)
    with QueryServer(service) as srv:
        with _connect(srv) as client:
            for number in sorted(QUERIES):
                client.tpcd(number)
            snap = client.stats()["result_cache"]
    service.close()
    assert snap["size"] >= 1
    assert snap["bytes"] <= snap["budget_bytes"]
    assert snap["peak_bytes"] <= snap["budget_bytes"]


# ----------------------------------------------------------------------
# wire formats: negotiation, differential checksums, spool fast path
# ----------------------------------------------------------------------
def test_json_and_binary_wires_serve_identical_checksums(
        server, serial_checksums):
    host, port = server.address
    with QueryClient(host, port, wire="json") as json_client, \
            QueryClient(host, port, wire="binary") as bin_client:
        assert json_client.wire == "json"
        assert bin_client.wire == "binary"
        for number in sorted(QUERIES):
            json_reply = json_client.tpcd(number)
            bin_reply = bin_client.tpcd(number)
            assert json_reply.checksum == bin_reply.checksum \
                == serial_checksums[number]
        assert bin_client.bytes_received > 0
        assert json_client.bytes_received > 0


def test_binary_wire_ships_columns_smaller_than_json(server, db_dir):
    """The point of the binary wire: a column-shipping MIL fetch costs
    fewer reply bytes raw than base64-in-JSON (which inflates every
    buffer by 4/3)."""
    program = MILProgram()
    window = program.emit("slice", [Var("Item_quantity"), 0, 4095])
    program.emit("multiplex", [window, 1.0], fn="*", target="col")
    host, port = server.address
    with QueryClient(host, port, wire="json") as json_client, \
            QueryClient(host, port, wire="binary") as bin_client:
        json_reply = json_client.mil(program, ["col"])
        json_bytes = json_client.bytes_received
        bin_reply = bin_client.mil(program, ["col"])
        bin_bytes = bin_client.bytes_received
    assert bin_reply.checksum == json_reply.checksum
    assert bin_bytes < json_bytes, (bin_bytes, json_bytes)


def test_unknown_wire_format_answers_typed_and_survives(server):
    from repro.server.protocol import recv_frame as _recv
    from repro.server.protocol import send_frame as _send
    host, port = server.address
    with QueryClient(host, port, wire="json") as client:
        _send(client._sock, {"type": "wire", "format": "capnproto"})
        reply = _recv(client._sock)
        assert reply["type"] == "error"
        assert reply["error"] == "WireFormatError"
        assert reply["retryable"] is False
        # the connection (and its JSON wire state) survives
        assert client.ping() == 1
        _send(client._sock, {"type": "wire", "format": "binary",
                             "spool_threshold": -3})
        reply = _recv(client._sock)
        assert reply["error"] == "WireFormatError"
        assert client.ping() == 1


def test_client_degrades_to_json_when_format_unavailable(server):
    host, port = server.address
    with QueryClient(host, port, wire="msgpack") as client:
        assert client.wire == "json"
        assert client.tpcd(6).checksum


def test_spool_fast_path_ships_files_and_cleans_up(
        db_dir, serial_checksums, tmp_path):
    service = QueryService(db_dir, procs=1)
    spool_dir = tmp_path / "spool"
    server = QueryServer(service, spool_dir=str(spool_dir))
    server.start()
    try:
        host, port = server.address
        with QueryClient(host, port, spool=True,
                         spool_threshold=0) as client:
            assert client.spooling is True
            for number in (1, 6, 12):
                reply = client.tpcd(number)
                assert reply.spooled is True
                assert reply.checksum == serial_checksums[number]
            assert client.spool_bytes > 0
            # every spool file was unlinked after its one read
            assert list(spool_dir.iterdir()) == []
        # a client that does not opt in never sees a spooled reply
        with QueryClient(host, port) as client:
            assert client.spooling is False
            assert client.tpcd(6).spooled is False
    finally:
        server.stop()
        service.close()


def test_spool_vanished_file_is_retried_via_spool_error(
        db_dir, serial_checksums, tmp_path, monkeypatch):
    """A spool file torn out from under the client surfaces as the
    retryable SpoolError; the retry budget re-ships the payload."""
    import repro.server.client as client_mod
    from repro.errors import SpoolError
    service = QueryService(db_dir, procs=1)
    spool_dir = tmp_path / "spool"
    server = QueryServer(service, spool_dir=str(spool_dir))
    server.start()
    try:
        host, port = server.address
        real_read = client_mod.read_spooled_payload
        failures = {"left": 1}

        def flaky_read(path, expected_bytes=None, unlink=True):
            if failures["left"]:
                failures["left"] -= 1
                raise SpoolError("spool file vanished (injected)")
            return real_read(path, expected_bytes=expected_bytes,
                             unlink=unlink)

        monkeypatch.setattr(client_mod, "read_spooled_payload",
                            flaky_read)
        with QueryClient(host, port, spool=True, spool_threshold=0,
                         retries=2, backoff_base=0.01) as client:
            reply = client.tpcd(6)
            assert reply.checksum == serial_checksums[6]
            assert client.retries_used == 1
        # without a retry budget the typed error surfaces
        failures["left"] = 1
        with QueryClient(host, port, spool=True,
                         spool_threshold=0) as client:
            with pytest.raises(SpoolError):
                client.tpcd(6)
    finally:
        server.stop()
        service.close()


# ----------------------------------------------------------------------
# stats
# ----------------------------------------------------------------------
def test_stats_shape_and_latency_percentiles(server):
    with _connect(server) as client:
        for _ in range(3):
            client.tpcd(12)
        stats = client.stats()
    latency = stats["latency_ms"]
    assert latency["count"] >= 3
    assert latency["p50"] <= latency["p95"] <= latency["p99"]
    assert stats["counters"]["requests"] >= 3
    assert stats["buffer"]["faults"] >= 0
    pools = stats["pools"]
    assert "1" in pools
    assert pools["1"]["procs"] == 2
    assert len(pools["1"]["pids"]) == 2
    assert stats["inflight"] == 0


# ----------------------------------------------------------------------
# admission control + timeouts
# ----------------------------------------------------------------------
def test_admission_overload_is_typed(db_dir):
    service = QueryService(db_dir, procs=1, max_inflight=1,
                           max_queue=0)
    with QueryServer(service) as srv:
        with _connect(srv) as client:
            client.tpcd(6)               # pool warm, service healthy
            # occupy the only in-flight slot from the side
            with service._adm:
                service._inflight += 1
            try:
                with pytest.raises(ServerOverloadedError):
                    client.tpcd(6)
            finally:
                with service._adm:
                    service._inflight -= 1
                    service._adm.notify()
            assert client.tpcd(6).checksum    # healthy again
            stats = client.stats()
    service.close()
    assert stats["counters"]["overloads"] == 1


def test_queue_wait_past_timeout_budget_overloads(db_dir):
    service = QueryService(db_dir, procs=1, max_inflight=1,
                           max_queue=4)
    with QueryServer(service) as srv:
        with _connect(srv) as client:
            with service._adm:
                service._inflight += 1
            try:
                started = time.monotonic()
                with pytest.raises(ServerOverloadedError):
                    client.tpcd(6, timeout=0.2)
                assert time.monotonic() - started >= 0.2
            finally:
                with service._adm:
                    service._inflight -= 1
                    service._adm.notify()
    service.close()


def test_query_timeout_kills_worker_and_recovers(db_dir,
                                                 serial_checksums):
    service = QueryService(db_dir, procs=1)
    with QueryServer(service) as srv:
        with _connect(srv) as client:
            client.tpcd(6)                       # warm the worker
            before = service.stats()["pools"]["1"]["pids"]
            with pytest.raises(QueryTimeoutError):
                client.tpcd(13, timeout=0.0001)
            # the worker was killed and respawned; the session serves on
            reply = client.tpcd(13)
            assert reply.checksum == serial_checksums[13]
            stats = client.stats()
            after = stats["pools"]["1"]["pids"]
    service.close()
    assert stats["counters"]["timeouts"] == 1
    assert stats["pools"]["1"]["respawns"] >= 1
    assert before != after


# ----------------------------------------------------------------------
# generation pinning under live rewrites
# ----------------------------------------------------------------------
@pytest.fixture()
def rewritable_db(tiny_tpcd, tmp_path):
    path = tmp_path / "db"
    load_tpcd(tiny_tpcd, db_dir=path)
    return path


def _bump_generation(db_dir):
    db, _report = open_tpcd(db_dir)
    save_tpcd(db, db_dir)                # dataset-less re-save: +1


def test_sessions_pin_their_generation_across_bumps(rewritable_db,
                                                    serial_checksums):
    service = QueryService(rewritable_db, procs=1)
    with QueryServer(service) as srv:
        old = _connect(srv)
        try:
            assert old.generation == 1
            assert old.tpcd(6).generation == 1

            _bump_generation(rewritable_db)

            # the old session still serves its pinned snapshot
            reply = old.tpcd(6)
            assert reply.generation == 1
            assert reply.checksum == serial_checksums[6]

            # a new session sees the bump and gets its own pool
            with _connect(srv) as fresh:
                assert fresh.generation == 2
                fresh_reply = fresh.tpcd(6)
                assert fresh_reply.generation == 2
                # a re-save of identical data: same rows, same sha1
                assert fresh_reply.checksum == serial_checksums[6]
                assert sorted(fresh.stats()["pools"]) == ["1", "2"]
        finally:
            old.close()
        # the stale pool retires once its last pinned session ends
        deadline = time.monotonic() + 10.0
        while service.pool_generations() != [2]:
            assert time.monotonic() < deadline, \
                service.pool_generations()
            time.sleep(0.02)
    service.close()


def test_clients_keep_serving_through_live_rewrites(rewritable_db,
                                                    serial_checksums):
    """The satellite stress: readers query through the server while a
    writer keeps bumping generations; every reply verifies against its
    session's pinned snapshot and nothing errors or tears."""
    service = QueryService(rewritable_db, procs=2)
    failures = []
    generations_seen = set()
    stop = threading.Event()

    with QueryServer(service) as srv:
        def reader(tid):
            try:
                while not stop.is_set():
                    with _connect(srv) as client:
                        generations_seen.add(client.generation)
                        for number in (1, 6, 12):
                            reply = client.tpcd(number)
                            assert reply.generation == \
                                client.generation
                            assert reply.checksum == \
                                serial_checksums[number]
            except BaseException as exc:     # noqa: BLE001
                failures.append((tid, exc))

        threads = [threading.Thread(target=reader, args=(tid,))
                   for tid in range(3)]
        for thread in threads:
            thread.start()
        try:
            for _round in range(2):
                time.sleep(0.3)
                _bump_generation(rewritable_db)
        finally:
            stop.set()
            for thread in threads:
                thread.join()
    service.close()
    assert not failures, failures[:2]
    assert len(generations_seen) >= 2, generations_seen


def test_caches_stay_correct_while_workers_crash(rewritable_db,
                                                 serial_checksums):
    """The live-rewrite stress again, now with workers being killed
    under it: each worker process crashes mid-dispatch on its fourth
    task.  The service resubmits once (the respawned worker's shipped
    plan re-arms with the same skip, so the retry lands inside the
    fresh worker's grace window) and the plan/result caches must never
    convert a crash into a wrong or cross-generation answer — every
    reply that reaches a client still checksums against its session's
    pinned snapshot."""
    plan = faults.FaultPlan().arm("multiproc.task.start",
                                  action="crash", skip=3, times=1)
    service = QueryService(rewritable_db, procs=1, crash_retries=1,
                           result_cache_bytes=1 << 20,
                           fault_plan=plan)
    failures = []
    stop = threading.Event()

    with QueryServer(service) as srv:
        host, port = srv.address

        def reader(tid):
            try:
                while not stop.is_set():
                    # retries absorb a resubmit that crashes *again*
                    # (surfacing as retryable ServerOverloadedError)
                    with QueryClient(host, port, retries=4,
                                     backoff_base=0.01) as client:
                        for number in (1, 6, 12):
                            reply = client.tpcd(number)
                            assert reply.generation == \
                                client.generation
                            assert reply.checksum == \
                                serial_checksums[number]
            except BaseException as exc:     # noqa: BLE001
                failures.append((tid, exc))

        threads = [threading.Thread(target=reader, args=(tid,))
                   for tid in range(2)]
        for thread in threads:
            thread.start()
        try:
            for _round in range(2):
                time.sleep(0.3)
                _bump_generation(rewritable_db)
        finally:
            stop.set()
            for thread in threads:
                thread.join()
        counters = service.stats()["counters"]
    service.close()
    assert not failures, failures[:2]
    # the fault actually fired and the degraded path absorbed it
    assert counters["crash_retries"] >= 1, counters
    assert counters["errors"] == 0, counters


# ----------------------------------------------------------------------
# static plan admission (verifier + budget, before any worker runs)
# ----------------------------------------------------------------------
def test_error_frames_carry_the_retryability_verdict():
    from repro.errors import PlanBudgetExceededError
    from repro.server.server import _error_frame

    frame = _error_frame(ServerOverloadedError("full"))
    assert frame["type"] == "error"
    assert frame["error"] == "ServerOverloadedError"
    assert frame["retryable"] is True
    frame = _error_frame(PlanBudgetExceededError("too big"))
    assert frame["retryable"] is False


def test_plan_budget_rejects_before_any_worker_executes(db_dir):
    from repro.analysis.verify import PlanBudget
    from repro.errors import (PlanBudgetExceededError,
                              PlanVerificationError)

    service = QueryService(db_dir, procs=1,
                           plan_budget=PlanBudget(max_rows=50))
    with QueryServer(service) as srv:
        host, port = srv.address
        with QueryClient(host, port) as client:
            # over-budget moa: compiled in the worker, rejected before
            # a single statement runs, typed across the wire
            with pytest.raises(PlanBudgetExceededError):
                client.moa(QUERIES[1].texts()[0])
            # malformed mil: rejected parent-side, pre-admission
            bad = MILProgram()
            bad.emit("join", [Var("not_a_bat"),
                              Var("Item_quantity")])
            with pytest.raises(PlanVerificationError):
                client.mil(bad, ["whatever"])
            # over-budget mil: also rejected parent-side
            big = MILProgram()
            big.emit("join", [Var("Item_part"), Var("Part_name")])
            with pytest.raises(PlanBudgetExceededError):
                client.mil(big, ["whatever"])
            # an under-budget plan still executes normally
            ok = MILProgram()
            window = ok.emit("slice", [Var("Item_quantity"), 0, 9])
            ok.emit("aggr_all", [window], fn="count", target="n")
            assert client.mil(ok, ["n"]).value == {"n": 9}
            counters = client.stats()["counters"]
    service.close()
    # both mil rejections were counted, and of the four executable
    # requests only the under-budget plan ever produced a result
    assert counters["plan_rejections"] == 2, counters
    assert counters["results"] == 1, counters


def test_unbudgeted_service_verifies_mil_but_admits_everything(db_dir):
    from repro.errors import PlanVerificationError

    service = QueryService(db_dir, procs=1)
    with QueryServer(service) as srv:
        host, port = srv.address
        with QueryClient(host, port) as client:
            # verification still rejects malformed plans...
            bad = MILProgram()
            bad.emit("mirror", [Var("nope")])
            with pytest.raises(PlanVerificationError):
                client.mil(bad, ["x"])
            # ...but big well-formed plans pass (no budget configured)
            reply = client.moa(QUERIES[1].texts()[0])
            assert reply.checksum
    service.close()
