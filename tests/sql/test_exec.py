"""End-to-end execution: the SQL path is checksum-identical to Moa.

Every SQL formulation of the reproduced TPC-D queries is executed
through parse -> bind -> lower -> resolve -> rewrite -> MIL on the
tier-1 fixture database, and its canonical sha1 must equal the
hand-written Moa driver's — the same byte-identity contract the bench
``sql`` section and the serving path enforce.
"""

import pytest

from repro.errors import SqlUnsupportedError
from repro.monet.multiproc import result_checksum, ship_value
from repro.sql.runtime import PreparedSql, execute_sql, prepare_sql
from repro.sql.suite import sql_queries, sql_text
from repro.tpcd.queries import QUERIES


@pytest.mark.parametrize("number", sorted(sql_queries()))
def test_sql_checksum_equals_moa_driver(number, tiny_tpcd_db):
    db = tiny_tpcd_db
    moa_rows = QUERIES[number].run(db)
    sql_rows = execute_sql(db, sql_text(number))
    assert result_checksum(ship_value(sql_rows)) == \
        result_checksum(ship_value(moa_rows))


def test_param_overrides_flow_into_the_sql_text(tiny_tpcd_db):
    overrides = {"qty": 30}
    moa_rows = QUERIES[6].run(tiny_tpcd_db, overrides)
    sql_rows = execute_sql(tiny_tpcd_db,
                           sql_text(6, overrides=overrides))
    assert sql_rows == pytest.approx(moa_rows)


def test_prepared_sql_reexecutes_identically(tiny_tpcd_db):
    prepared = prepare_sql(tiny_tpcd_db, sql_text(3))
    assert isinstance(prepared, PreparedSql)
    first = result_checksum(ship_value(prepared.run()))
    second = result_checksum(ship_value(prepared.run()))
    assert first == second


def test_prepared_sql_compiles_hole_free_phases_once(tiny_tpcd_db):
    # Q11: two hole-free phases compiled at prepare time, the holed
    # HAVING phase left for per-run resolution
    prepared = prepare_sql(tiny_tpcd_db, sql_text(11))
    seen_holes = False
    for phase, compiled in zip(prepared.lowered.phases,
                               prepared._compiled):
        if phase.kind != "moa":
            assert compiled is None     # py phases never compile
            continue
        seen_holes = seen_holes or phase.has_holes
        assert (compiled is not None) == (not phase.has_holes)
    assert seen_holes


def test_budget_rejection_happens_at_prepare_time(tiny_tpcd_db):
    from repro.analysis.verify import (PlanBudget,
                                       catalog_stats_from_kernel)
    from repro.errors import PlanBudgetExceededError
    catalog = catalog_stats_from_kernel(tiny_tpcd_db.kernel)
    with pytest.raises(PlanBudgetExceededError):
        prepare_sql(tiny_tpcd_db, sql_text(1),
                    budget=PlanBudget(max_rows=1), catalog=catalog)


def test_unsupported_sql_never_reaches_execution(tiny_tpcd_db):
    with pytest.raises(SqlUnsupportedError):
        execute_sql(tiny_tpcd_db,
                    "select l_orderkey from lineitem, orders")


def test_scalar_result_is_a_python_scalar(tiny_tpcd_db):
    value = execute_sql(tiny_tpcd_db,
                        "select sum(l_quantity) as q from lineitem")
    assert isinstance(float(value), float)
