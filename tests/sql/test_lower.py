"""Lowering contract: SQL ASTs become the Moa plans the hand-written
path would build.

These tests pin the *plan shapes* (via the rendered MOA trees), not
results — the differential/oracle suites cover results.  The central
claims: foreign-key equi-joins dissolve into path navigation instead
of real joins, subquery predicates become semijoins, grouped queries
become nest/project pipelines, and scalar subqueries split into
phases exactly like the hand-written two-phase TPC-D drivers.
"""

import pytest

from repro.errors import SqlUnsupportedError
from repro.sql import ast as sql_ast
from repro.sql.lower import _LOWERS, lower_sql
from repro.sql.parser import parse_sql
from repro.sql.runtime import Hole


def _phases(text):
    return lower_sql(parse_sql(text)).phases


def _plan(text):
    phases = _phases(text)
    assert len(phases) == 1
    return phases[0].render()


# ----------------------------------------------------------------------
# totality: every AST node the parser can produce has a lowering
# ----------------------------------------------------------------------
def test_lowering_dispatch_is_total_over_the_ast():
    declared = {cls.__name__ for cls in sql_ast.NODE_CLASSES}
    assert set(_LOWERS) == declared


# ----------------------------------------------------------------------
# foreign-key dissolution: no join operator for FK navigation
# ----------------------------------------------------------------------
def test_fk_equijoin_dissolves_into_path_navigation():
    plan = _plan("select o_orderdate from orders, lineitem "
                 "where l_orderkey = o_orderkey "
                 "and l_quantity > 10.0")
    assert "join" not in plan
    assert "%order.orderdate" in plan
    assert plan.startswith("project[")


def test_fk_chain_dissolves_transitively():
    # lineitem -> orders -> customer -> nation: three FK hops, no join
    plan = _plan("select n_name from lineitem, orders, customer, "
                 "nation where l_orderkey = o_orderkey and "
                 "o_custkey = c_custkey and c_nationkey = n_nationkey")
    assert "join" not in plan
    assert "%order.cust.nation.name" in plan


def test_non_fk_equijoin_stays_a_real_join():
    # supplier/customer nation equality is not a FK edge
    plan = _plan("select s_name, c_name from supplier, customer "
                 "where s_nationkey = c_nationkey")
    assert "join[" in plan


def test_cross_join_is_rejected_typed():
    with pytest.raises(SqlUnsupportedError) as err:
        _phases("select s_name, c_name from supplier, customer")
    assert "cross" in str(err.value).lower()


# ----------------------------------------------------------------------
# subquery predicates lower to (anti)semijoins
# ----------------------------------------------------------------------
def test_exists_lowers_to_semijoin():
    plan = _plan("select o_orderpriority from orders where exists "
                 "(select * from lineitem "
                 "where l_orderkey = o_orderkey)")
    assert "semijoin[" in plan
    assert "antijoin" not in plan


def test_not_exists_lowers_to_antijoin():
    plan = _plan("select c_name from customer where not exists "
                 "(select * from orders where o_custkey = c_custkey)")
    assert "antijoin[" in plan


def test_in_select_lowers_to_semijoin():
    plan = _plan("select c_name from customer where c_nationkey in "
                 "(select n_nationkey from nation "
                 "where n_name = 'FRANCE')")
    assert "semijoin[" in plan


def test_uncorrelated_exists_is_rejected_typed():
    with pytest.raises(SqlUnsupportedError):
        _phases("select c_name from customer where exists "
                "(select * from orders)")


# ----------------------------------------------------------------------
# grouping and scalar aggregates
# ----------------------------------------------------------------------
def test_group_by_lowers_to_nest_project():
    plan = _plan("select l_returnflag as f, sum(l_quantity) as q "
                 "from lineitem group by l_returnflag")
    assert "nest[" in plan
    assert "project[" in plan
    assert "sum(" in plan


def test_scalar_aggregate_is_a_bare_aggregate_phase():
    plan = _plan("select sum(l_quantity) as total from lineitem")
    assert plan.startswith("sum(")
    assert "nest" not in plan


def test_count_star_needs_no_projection_argument():
    plan = _plan("select count(*) as n from lineitem "
                 "where l_quantity > 30.0")
    assert plan.startswith("count(")


def test_arithmetic_over_aggregates_becomes_a_py_phase():
    # Q14's shape: no MIL operator combines two scalars
    phases = _phases(
        "select 100.0 * sum(l_extendedprice) / sum(l_quantity) "
        "as ratio from lineitem")
    kinds = [p.kind for p in phases]
    assert kinds == ["moa", "moa", "py"]


def test_scalar_query_rejects_multiple_items():
    with pytest.raises(SqlUnsupportedError):
        _phases("select sum(l_quantity), sum(l_tax) from lineitem")


def test_having_without_group_by_is_rejected():
    with pytest.raises(SqlUnsupportedError):
        _phases("select l_orderkey from lineitem having 1 = 1")


# ----------------------------------------------------------------------
# scalar subqueries split into phases (the two-phase driver shape)
# ----------------------------------------------------------------------
def test_uncorrelated_scalar_subquery_becomes_a_hole_phase():
    lowered = lower_sql(parse_sql(
        "select s_name from supplier where s_acctbal > "
        "(select avg(s_acctbal) from supplier)"))
    assert len(lowered.phases) == 2
    first, second = lowered.phases
    assert first.kind == "moa" and not first.has_holes
    assert second.kind == "moa" and second.has_holes
    assert "$0" in second.render()      # the Hole renders as $0
    holes = [n for n in _walk_moa(second.tree)
             if isinstance(n, Hole)]
    assert holes and holes[0].index == 0


def test_correlated_min_subquery_decorrelates_to_nest_join():
    # Q2's shape: per-part minimum cost, decorrelated through
    # nest + project + join instead of per-row re-execution
    plan = _plan(
        "select p_name from part, partsupp where "
        "ps_partkey = p_partkey and ps_supplycost = "
        "(select min(ps_supplycost) from partsupp "
        "where ps_partkey = p_partkey)")
    assert "nest[" in plan
    assert "join[" in plan
    assert "min(" in plan


def _walk_moa(tree):
    from repro.moa import ast as moa_ast
    return moa_ast.walk(tree)


# ----------------------------------------------------------------------
# expression details
# ----------------------------------------------------------------------
def test_char_comparison_coerces_the_literal():
    plan = _plan("select l_orderkey as o from lineitem "
                 "where l_returnflag = 'R'")
    assert "char(\"R\")" in plan or "'R'" in plan


def test_case_lowers_to_ifthenelse():
    plan = _plan("select sum(case when l_returnflag = 'R' then 1 "
                 "else 0 end) as n from lineitem")
    assert "ifthenelse(" in plan


def test_like_shapes_lower_to_string_predicates():
    assert "startswith" in _plan(
        "select p_name from part where p_name like 'gre%'")
    assert "endswith" in _plan(
        "select p_name from part where p_name like '%STEEL'")
    assert "contains" in _plan(
        "select p_name from part where p_name like '%green%'")


def test_like_with_underscore_wildcard_is_rejected():
    with pytest.raises(SqlUnsupportedError):
        _phases("select p_name from part where p_name like 'g_een'")


def test_extract_year_lowers_to_year_call():
    plan = _plan("select extract(year from o_orderdate) as y, "
                 "count(*) as n from orders "
                 "group by extract(year from o_orderdate)")
    assert "year(" in plan


def test_order_by_output_name_resolves_post_projection():
    plan = _plan("select l_returnflag as f, sum(l_quantity) as q "
                 "from lineitem group by l_returnflag "
                 "order by q desc limit 5")
    assert "top[5]" in plan
    assert "sort[" in plan
    assert "%q desc" in plan
