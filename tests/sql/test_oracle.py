"""Differential oracle: the SQL path vs stdlib sqlite3, row for row.

The oracle loads the *same generated rowstore* into an in-memory
sqlite3 database and re-renders each parsed query to sqlite's
dialect; :func:`repro.sql.oracle.check_query` then asserts multiset
equality of canonicalised rows.  Independence is the point — sqlite
shares no code with the Moa/MIL pipeline, so agreement on every
supported query (and on the EXTRAS constructs sqlite can express) is
strong evidence the lowering is semantics-preserving, not just
self-consistent.
"""

import pytest

from repro.sql.oracle import (canonical_rows, check_query, load_oracle,
                              rows_equivalent)
from repro.sql.suite import EXTRAS, GAPS, sql_queries


@pytest.fixture(scope="module")
def oracle(tiny_tpcd):
    conn = load_oracle(tiny_tpcd)
    yield conn
    conn.close()


@pytest.mark.parametrize("number", sorted(sql_queries()))
def test_tpcd_queries_match_sqlite(number, tiny_tpcd_db, oracle):
    check_query(tiny_tpcd_db, oracle, sql_queries()[number])


@pytest.mark.parametrize("name", sorted(EXTRAS))
def test_extra_constructs_match_sqlite(name, tiny_tpcd_db, oracle):
    check_query(tiny_tpcd_db, oracle, EXTRAS[name])


def test_gaps_name_only_unreproduced_queries():
    # the gap list covers exactly the TPC-H queries beyond the 15
    # reproduced ones, each with its blocking construct named
    assert set(GAPS) == {16, 17, 18, 19, 20, 21, 22}
    assert not set(GAPS) & set(sql_queries())
    for reason in GAPS.values():
        assert isinstance(reason, str) and reason


def test_oracle_detects_an_injected_divergence(tiny_tpcd_db, oracle):
    # the harness itself must be falsifiable: a predicate flipped
    # between the two sides has to fail loudly
    with pytest.raises(AssertionError):
        check_query(
            tiny_tpcd_db, oracle,
            "select count(*) as n from lineitem "
            "where l_quantity > 30.0",
            sqlite_text="select count(*) as n from lineitem "
                        "where l_quantity > 31.0")


def test_row_canonicalisation_tolerates_float_noise():
    a = canonical_rows([("x", 1.0000000001)])
    b = canonical_rows([("x", 1.0)])
    assert rows_equivalent(a, b)
    assert not rows_equivalent(canonical_rows([("x", 1.0)]),
                               canonical_rows([("x", 2.0)]))
