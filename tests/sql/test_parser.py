"""Parser contract: round-trip idempotence and typed failures.

The canonical round-trip property (documented in ``repro.sql.ast``)
is render *idempotence*: the first parse canonicalises (BETWEEN
desugars, DATE +/- INTERVAL folds, JOIN ... ON moves into WHERE), and
``render(parse(render(parse(t))))`` equals ``render(parse(t))`` for
every accepted ``t``.  Malformed text must raise
:class:`~repro.errors.SqlParseError` carrying line/column position;
parsed-but-out-of-subset constructs must raise
:class:`~repro.errors.SqlUnsupportedError` — never a crash, never a
wrong answer.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import (SqlError, SqlParseError, SqlUnsupportedError,
                          is_retryable)
from repro.sql.parser import parse_sql
from repro.sql.suite import EXTRAS, sql_queries


def _roundtrip(text):
    once = parse_sql(text).render()
    twice = parse_sql(once).render()
    return once, twice


# ----------------------------------------------------------------------
# round-trip over the whole suite
# ----------------------------------------------------------------------
@pytest.mark.parametrize("number", sorted(sql_queries()))
def test_suite_queries_roundtrip(number):
    once, twice = _roundtrip(sql_queries()[number])
    assert once == twice


@pytest.mark.parametrize("name", sorted(EXTRAS))
def test_extras_roundtrip(name):
    once, twice = _roundtrip(EXTRAS[name])
    assert once == twice


def test_canonicalisation_is_stable_not_identity():
    # BETWEEN desugars on the first parse; the second is a fixpoint
    text = ("select l_orderkey from lineitem "
            "where l_discount between 0.05 and 0.07")
    once, twice = _roundtrip(text)
    assert "between" not in once
    assert ">=" in once and "<=" in once
    assert once == twice


def test_join_on_desugars_into_where():
    text = ("select o_orderdate from orders "
            "join lineitem on l_orderkey = o_orderkey "
            "where l_quantity > 10")
    once, twice = _roundtrip(text)
    assert "join" not in once
    assert once.count("where") == 1
    assert once == twice


def test_date_interval_folds_to_a_literal():
    text = ("select o_orderdate from orders where o_orderdate < "
            "date '1995-01-01' + interval '3' month")
    once, twice = _roundtrip(text)
    assert "interval" not in once
    assert "date '1995-04-01'" in once
    assert once == twice


# ----------------------------------------------------------------------
# property: random expressions round-trip idempotently
# ----------------------------------------------------------------------
_COLUMNS = st.sampled_from(
    ["l_quantity", "l_extendedprice", "l_discount", "l_tax"])
_NUMBERS = st.one_of(
    st.integers(min_value=0, max_value=999).map(str),
    st.floats(min_value=0.0, max_value=99.0, allow_nan=False,
              allow_infinity=False).map(lambda f: "%.3f" % f))
_STRINGS = st.sampled_from(["'MAIL'", "'SHIP'", "'1-URGENT'"])


def _expr(children):
    atom = st.one_of(_COLUMNS, _NUMBERS, _STRINGS)
    binop = st.tuples(children, st.sampled_from(["+", "-", "*", "/"]),
                      children).map(lambda t: "(%s %s %s)" % t)
    cmp_ = st.tuples(children,
                     st.sampled_from(["=", "<>", "<", "<=", ">", ">="]),
                     children).map(lambda t: "(%s %s %s)" % t)
    logic = st.tuples(cmp_, st.sampled_from(["and", "or"]),
                      cmp_).map(lambda t: "(%s %s %s)" % t)
    case = st.tuples(cmp_, children, children).map(
        lambda t: "case when %s then %s else %s end" % t)
    inlist = st.tuples(children, _NUMBERS, _NUMBERS).map(
        lambda t: "(%s in (%s, %s))" % t)
    return st.one_of(atom, binop, cmp_, logic, case, inlist)


_EXPRS = st.recursive(st.one_of(_COLUMNS, _NUMBERS), _expr,
                      max_leaves=12)


@settings(max_examples=80, deadline=None)
@given(expr=_EXPRS, pred=_EXPRS)
def test_random_expressions_roundtrip(expr, pred):
    text = "select %s as x from lineitem where (%s) > 0" % (expr, pred)
    once = parse_sql(text).render()
    assert parse_sql(once).render() == once


# ----------------------------------------------------------------------
# malformed text: typed parse errors with position info
# ----------------------------------------------------------------------
@pytest.mark.parametrize("text, line, column", [
    ("select frum lineitem", 1, 21),
    ("select * from", 1, 14),
    ("select l_orderkey\nfrom lineitem\nwhere", 3, 6),
    ("select * from lineitem order by", 1, 32),
    ("select\nl_orderkey,\nfrom lineitem", 3, 14),
])
def test_malformed_sql_raises_with_position(text, line, column):
    with pytest.raises(SqlParseError) as err:
        parse_sql(text)
    message = str(err.value)
    assert "(line %d, column %d)" % (line, column) in message
    assert err.value.position is not None
    assert err.value.text == text


def test_unbalanced_parens_are_a_parse_error():
    with pytest.raises(SqlParseError):
        parse_sql("select (l_quantity + from lineitem")


def test_garbage_after_statement_is_a_parse_error():
    with pytest.raises(SqlParseError):
        parse_sql("select l_quantity from lineitem ; drop table x")


# ----------------------------------------------------------------------
# out-of-subset constructs: typed unsupported, never a wrong answer
# ----------------------------------------------------------------------
@pytest.mark.parametrize("text, needle", [
    ("select rank() over (order by l_quantity) from lineitem",
     "window"),
    ("select * from lineitem left outer join orders "
     "on l_orderkey = o_orderkey", "outer join"),
    ("select distinct l_orderkey from lineitem", "DISTINCT"),
    ("select count(distinct l_suppkey) from lineitem", "DISTINCT"),
    ("select l_orderkey from lineitem union "
     "select o_orderkey from orders", "set operations"),
    ("select l_orderkey from lineitem where l_comment is null",
     "NULL"),
])
def test_unsupported_constructs_raise_typed(text, needle):
    with pytest.raises(SqlUnsupportedError) as err:
        parse_sql(text)
    assert needle.lower() in str(err.value).lower()


def test_sql_errors_form_a_non_retryable_taxonomy():
    # both failure modes share the SqlError base and are terminal:
    # resubmitting the identical text cannot succeed
    assert issubclass(SqlParseError, SqlError)
    assert issubclass(SqlUnsupportedError, SqlError)
    for cls in (SqlError, SqlParseError, SqlUnsupportedError):
        assert is_retryable(cls) is False


def test_unknown_table_and_column_raise_on_lowering():
    from repro.sql.lower import lower_sql
    with pytest.raises(SqlUnsupportedError):
        lower_sql(parse_sql("select * from nope"))
    with pytest.raises(SqlUnsupportedError):
        lower_sql(parse_sql("select nope from lineitem"))
