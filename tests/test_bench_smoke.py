"""Smoke test for the benchmark-regression harness.

Runs ``repro.bench.run`` in ``--quick`` mode against a throwaway
output path, so the harness (operand construction, kernel/reference
equivalence checks, JSON schema, warm-start caching, regression gate)
is exercised on every tier-1 run and cannot silently rot between PRs.
"""

import json

from repro.bench.run import find_regressions, main

EXPECTED_OPS = {"hashjoin", "semijoin", "group", "aggregate", "unique",
                "difference", "intersection", "mergejoin",
                "select_scan", "join_str", "semijoin_str", "pairjoin"}


def test_quick_bench_writes_trajectory(tmp_path):
    out = tmp_path / "BENCH_operators.json"
    assert main(["--quick", "--out", str(out)]) == 0
    results = json.loads(out.read_text())

    assert results["meta"]["quick"] is True
    assert results["load"]["warm_start"] is False
    assert results["load"]["seconds"] >= 0
    assert set(results["operators"]) == EXPECTED_OPS
    for name, entry in results["operators"].items():
        assert entry["median_ms"] >= 0
        assert entry["rows"] >= 0
        assert entry["faults"] >= 0
    # the vectorised kernels carry a measured speedup vs the naive
    # dict/loop reference (checked for output equality by the harness)
    for name in ("hashjoin", "semijoin", "group", "aggregate",
                 "join_str", "semijoin_str"):
        assert "speedup" in results["operators"][name]
    # the default run sweeps the chunked parallel layer at 1 and 4
    # workers and asserts bit-identical results before recording
    section = results["parallel"]
    assert section["workers_swept"] == [1, 4]
    for entry in section["operators"].values():
        assert set(entry["median_ms"]) == {"1", "4"}
        assert entry["checksum"]
        assert entry["rows"] >= 0
    assert len(results["queries"]) == 15
    for entry in results["queries"].values():
        assert entry["median_ms"] >= 0
        assert entry["faults"] >= 0
        # tail-latency percentiles ride along with every median
        assert entry["p50_ms"] <= entry["p95_ms"] <= entry["p99_ms"]


def test_quick_bench_db_dir_warm_start(tmp_path):
    out = tmp_path / "bench.json"
    db_dir = tmp_path / "tpcd-db"
    assert main(["--quick", "--out", str(out),
                 "--db-dir", str(db_dir)]) == 0
    cold = json.loads(out.read_text())
    assert cold["load"]["warm_start"] is False
    assert (db_dir / "catalog.json").exists()

    # gate disabled: this test asserts warm/cold *result* equality,
    # not timing stability of reps=2 micro-medians on a busy machine;
    # --workers 0 opts out of the parallel sweep entirely, --procs 2
    # runs the query set through the multi-process dispatcher (the
    # harness hard-errors unless every worker checksum equals the
    # serial run's)
    # --serve 1 --serve 2 additionally drives the query set through
    # the socket query service at two concurrency levels (closed-loop
    # clients; reply checksums hard-asserted against the serial run)
    assert main(["--quick", "--out", str(out), "--db-dir", str(db_dir),
                 "--no-regression-check", "--workers", "0",
                 "--procs", "2", "--serve", "1", "--serve", "2"]) == 0
    warm = json.loads(out.read_text())
    assert warm["load"]["warm_start"] is True
    assert "parallel" not in warm
    # warm-start operands are BUN-identical: same result cardinalities
    for name in EXPECTED_OPS:
        assert warm["operators"][name]["rows"] == \
            cold["operators"][name]["rows"], name
    for number in cold["queries"]:
        assert warm["queries"][number]["rows"] == \
            cold["queries"][number]["rows"], number
        # ...and checksum-identical to the cold run, both serially and
        # across the worker fleet
        assert warm["queries"][number]["checksum"] == \
            cold["queries"][number]["checksum"], number
    section = warm["multiproc"]
    assert section["procs"] == 2
    assert section["checksums_match"] is True
    assert set(section["queries"]) == set(cold["queries"])
    for number, entry in section["queries"].items():
        assert entry["checksum"] == cold["queries"][number]["checksum"]
    serve = warm["serve"]
    assert serve["checksums_match"] is True
    assert serve["clients_swept"] == [1, 2]
    assert set(serve["sweep"]) == {"1", "2"}
    for entry in serve["sweep"].values():
        # every client runs the full 15-query set once per round
        # (single-text queries travel as Moa text, two-phase as tpcd)
        assert entry["requests"] == entry["clients"] * 15 * \
            serve["rounds"]
        assert entry["qps"] > 0
        assert entry["p50_ms"] <= entry["p95_ms"] <= entry["p99_ms"]
    # the acceptance observable: repeated rounds hit the plan caches
    assert serve["plan_cache"]["hits"] > 0


def test_regression_gate():
    previous = {
        "meta": {"sf": 0.01, "quick": False},
        "operators": {"hashjoin": {"median_ms": 1.0},
                      "newcomer_is_skipped": {"median_ms": 1.0}},
        "queries": {"1": {"median_ms": 10.0}},
    }
    fine = {
        "meta": {"sf": 0.01, "quick": False},
        "operators": {"hashjoin": {"median_ms": 1.9}},
        "queries": {"1": {"median_ms": 19.0}},
    }
    assert find_regressions(previous, fine) == []

    slow = {
        "meta": {"sf": 0.01, "quick": False},
        "operators": {"hashjoin": {"median_ms": 2.5}},
        "queries": {"1": {"median_ms": 25.0}},
    }
    found = find_regressions(previous, slow)
    assert len(found) == 2
    assert any("hashjoin" in line for line in found)

    # incomparable runs (different sf/mode) never trip the gate
    other_sf = dict(slow, meta={"sf": 0.1, "quick": False})
    assert find_regressions(previous, other_sf) == []

    # neither do runs with a different start temperature: a warm
    # (mmap reopen) baseline vs a cold (dbgen + load) run differs by
    # page-cache state alone
    warm_prev = dict(previous, load={"warm_start": True})
    cold_now = dict(slow, load={"warm_start": False})
    assert find_regressions(warm_prev, cold_now) == []
    warm_now = dict(slow, load={"warm_start": True})
    assert len(find_regressions(warm_prev, warm_now)) == 2

    # micro-entries below the noise floor are clamped before comparing
    noisy_prev = {"meta": {"sf": 0.01, "quick": False},
                  "operators": {"tiny": {"median_ms": 0.01}},
                  "queries": {}}
    noisy_now = {"meta": {"sf": 0.01, "quick": False},
                 "operators": {"tiny": {"median_ms": 0.3}},
                 "queries": {}}
    assert find_regressions(noisy_prev, noisy_now) == []
