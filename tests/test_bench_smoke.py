"""Smoke test for the benchmark-regression harness.

Runs ``repro.bench.run`` in ``--quick`` mode against a throwaway
output path, so the harness (operand construction, kernel/reference
equivalence checks, JSON schema) is exercised on every tier-1 run and
cannot silently rot between PRs.
"""

import json

from repro.bench.run import main

EXPECTED_OPS = {"hashjoin", "semijoin", "group", "aggregate", "unique",
                "difference", "intersection", "mergejoin",
                "select_scan"}


def test_quick_bench_writes_trajectory(tmp_path):
    out = tmp_path / "BENCH_operators.json"
    assert main(["--quick", "--out", str(out)]) == 0
    results = json.loads(out.read_text())

    assert results["meta"]["quick"] is True
    assert set(results["operators"]) == EXPECTED_OPS
    for name, entry in results["operators"].items():
        assert entry["median_ms"] >= 0
        assert entry["rows"] >= 0
        assert entry["faults"] >= 0
    # the vectorised kernels carry a measured speedup vs the naive
    # dict/loop reference (checked for output equality by the harness)
    for name in ("hashjoin", "semijoin", "group", "aggregate"):
        assert "speedup" in results["operators"][name]
    assert len(results["queries"]) == 15
    for entry in results["queries"].values():
        assert entry["median_ms"] >= 0
        assert entry["faults"] >= 0
