"""The examples must stay runnable (they are part of the deliverable)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


@pytest.mark.parametrize("script", ["quickstart.py", "nested_sets.py",
                                    "datavector_demo.py"])
def test_example_runs(script):
    proc = subprocess.run([sys.executable, str(EXAMPLES / script)],
                          capture_output=True, text=True, timeout=300)
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip()


def test_serve_smoke_runs(tmp_path):
    """The query-service smoke: a real server subprocess, 4 concurrent
    clients, every checksum diffed against an independent serial run."""
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / "serve_smoke.py"),
         "--db-dir", str(tmp_path / "db"), "--clients", "4"],
        capture_output=True, text=True, timeout=300)
    assert proc.returncode == 0, \
        proc.stdout[-2000:] + proc.stderr[-2000:]
    assert "OK: every served checksum matches" in proc.stdout


def test_tpcd_analytics_runs():
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / "tpcd_analytics.py"), "0.0005"],
        capture_output=True, text=True, timeout=300)
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert "Figure 10" in proc.stdout
    assert "Q15" in proc.stdout
