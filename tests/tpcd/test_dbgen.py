"""DBGEN equivalent: determinism, cardinalities, distributions."""

import numpy as np
import pytest

from repro.errors import DBGenError
from repro.monet.atoms import days_to_date
from repro.tpcd import generate
from repro.tpcd.dbgen import CURRENT_DATE, END_DATE, START_DATE


@pytest.fixture(scope="module")
def ds():
    return generate(scale=0.001, seed=5)


def test_determinism():
    a = generate(scale=0.0005, seed=9)
    b = generate(scale=0.0005, seed=9)
    assert np.array_equal(a.tables["item"]["extendedprice"],
                          b.tables["item"]["extendedprice"])
    assert a.data["Order"][0] == b.data["Order"][0]
    c = generate(scale=0.0005, seed=10)
    assert not np.array_equal(a.tables["item"]["extendedprice"],
                              c.tables["item"]["extendedprice"])


def test_invalid_scale():
    with pytest.raises(DBGenError):
        generate(scale=0)


def test_cardinalities_scale(ds):
    # spec ratios at SF=1: 10k suppliers, 200k parts, 150k customers,
    # 1.5M orders, ~6M items (1-7 per order, mean 4)
    assert ds.counts["region"] == 5
    assert ds.counts["nation"] == 25
    assert ds.counts["supplier"] == 10
    assert ds.counts["part"] == 200
    assert ds.counts["customer"] == 150
    assert ds.counts["order"] == 1500
    assert 3.5 * ds.counts["order"] < ds.counts["item"] \
        < 4.5 * ds.counts["order"]
    assert ds.counts["partsupp"] == 4 * ds.counts["part"]


def test_referential_integrity(ds):
    item = ds.tables["item"]
    assert item["order"].max() < ds.counts["order"]
    assert item["part"].max() < ds.counts["part"]
    assert item["supplier"].max() < ds.counts["supplier"]
    orders = ds.tables["orders"]
    assert orders["cust"].max() < ds.counts["customer"]
    # item supplier must actually supply the part
    ps_pairs = set(zip(ds.tables["partsupp"]["part"].tolist(),
                       ds.tables["partsupp"]["supplier"].tolist()))
    for p, s in zip(item["part"][:200].tolist(),
                    item["supplier"][:200].tolist()):
        assert (p, s) in ps_pairs


def test_date_rules(ds):
    item = ds.tables["item"]
    orders = ds.tables["orders"]
    assert orders["orderdate"].min() >= START_DATE
    assert orders["orderdate"].max() <= END_DATE
    odates = orders["orderdate"][item["order"]]
    assert np.all(item["shipdate"] > odates)
    assert np.all(item["receiptdate"] > item["shipdate"])
    # returnflag rule: R/A iff received before the current date
    returned = item["receiptdate"] <= CURRENT_DATE
    flags = item["returnflag"]
    assert set(flags[returned]) <= {"R", "A"}
    assert set(flags[~returned]) <= {"N"}
    # linestatus rule
    assert np.all((item["linestatus"] == "F")
                  == (item["shipdate"] <= CURRENT_DATE))


def test_value_ranges(ds):
    item = ds.tables["item"]
    assert item["quantity"].min() >= 1 and item["quantity"].max() <= 50
    assert item["discount"].min() >= 0.0
    assert item["discount"].max() <= 0.10 + 1e-9
    assert item["tax"].max() <= 0.08 + 1e-9
    part = ds.tables["part"]
    assert part["size"].min() >= 1 and part["size"].max() <= 50
    assert all(len(t.split()) == 3 for t in part["type"][:50])


def test_order_status_consistent(ds):
    orders = ds.tables["orders"]
    item = ds.tables["item"]
    order0_items = np.nonzero(item["order"] == 0)[0]
    statuses = set(item["linestatus"][order0_items])
    if statuses == {"F"}:
        assert orders["status"][0] == "F"
    elif statuses == {"O"}:
        assert orders["status"][0] == "O"
    else:
        assert orders["status"][0] == "P"


def test_totalprice_matches_items(ds):
    orders = ds.tables["orders"]
    item = ds.tables["item"]
    rows = np.nonzero(item["order"] == 1)[0]
    expected = (item["extendedprice"][rows]
                * (1 - item["discount"][rows])
                * (1 + item["tax"][rows])).sum()
    assert abs(orders["totalprice"][1] - expected) < 0.01


def test_logical_view_consistent(ds):
    # nested sets mirror the flat foreign keys
    order0 = ds.data["Order"][0]
    item_rows = np.nonzero(ds.tables["item"]["order"] == 0)[0]
    assert sorted(order0["item"]) == sorted(item_rows.tolist())
    cust = order0["cust"]
    assert 0 in ds.data["Customer"][cust]["orders"]
    # supplies match partsupp
    supplies0 = ds.data["Supplier"][0]["supplies"]
    ps = ds.tables["partsupp"]
    expected = int((ps["supplier"] == 0).sum())
    assert len(supplies0) == expected


def test_clerk_pool(ds):
    clerks = set(ds.tables["orders"]["clerk"])
    assert len(clerks) <= ds.counts["clerk"]
    assert all(c.startswith("Clerk#") for c in clerks)


def test_dates_convertible(ds):
    day = int(ds.tables["orders"]["orderdate"][0])
    assert 1992 <= days_to_date(day).year <= 1998
