"""TPC-D persistence: save -> reopen -> identical query answers.

The acceptance contract of the storage layer at database scale: a
TPC-D kernel saved with ``MonetKernel.save`` and reopened with
``MonetKernel.open`` answers every implemented query with results
identical to the freshly-loaded kernel, with base-BAT columns served
as ``np.memmap`` views and *no full-file eager read* on open (checked
through the real pager: a fresh mapping has zero resident pages until
a query touches it).
"""

import numpy as np
import pytest

from repro.monet import MonetKernel
from repro.monet.column import FixedColumn, VarColumn
from repro.monet.storage import residency_snapshot
from repro.tpcd import (QUERIES, load_tpcd, open_tpcd, peek_tpcd_meta,
                        tpcd_schema)


@pytest.fixture(scope="module")
def saved_db_dir(tiny_tpcd, tiny_tpcd_db, tmp_path_factory):
    db_dir = tmp_path_factory.mktemp("tpcd") / "db"
    from repro.tpcd import save_tpcd
    save_tpcd(tiny_tpcd_db, db_dir, tiny_tpcd)
    return db_dir


def test_reopened_db_answers_all_queries_identically(tiny_tpcd_db,
                                                     saved_db_dir):
    reopened, report = open_tpcd(saved_db_dir)
    assert report.warm
    for number in sorted(QUERIES):
        fresh = QUERIES[number].run(tiny_tpcd_db)
        warm = QUERIES[number].run(reopened)
        assert warm == fresh, "Q%d differs after reopen" % number


def test_reopen_serves_memmap_views_without_eager_read(saved_db_dir):
    reopened, _report = open_tpcd(saved_db_dir)
    kernel = reopened.kernel
    checked_fixed = checked_var = 0
    for name in kernel.names():
        bat = kernel.get(name)
        for column in (bat.head, bat.tail):
            if isinstance(column, FixedColumn):
                assert isinstance(column.data, np.memmap), \
                    "%s is not memmap-backed" % name
                checked_fixed += 1
            elif isinstance(column, VarColumn):
                assert isinstance(column.indices, np.memmap), name
                assert not column.heap.decoded, \
                    "%s decoded its var heap eagerly" % name
                checked_var += 1
    assert checked_fixed > 10 and checked_var > 5

    # the real pager agrees: nothing was faulted in by the open...
    snapshot = residency_snapshot(kernel)
    if not snapshot:
        pytest.skip("smaps residency accounting unavailable")
    assert all(pages == 0 for pages in snapshot.values())
    # ...until a query actually runs
    QUERIES[1].run(reopened)
    after = residency_snapshot(kernel)
    assert sum(after.values()) > 0


def test_simulated_fault_traces_survive_reopen(tiny_tpcd_db,
                                               saved_db_dir):
    """The Figure 9 fault simulation is invariant under persistence.

    Depends on the reopen re-sharing heaps exactly as the load built
    them (e.g. the datavector registry extent must be the extent BAT's
    head heap, not a second mapping of the same oids)."""
    from repro.bench.harness import measure_query_faults
    reopened, _report = open_tpcd(saved_db_dir)
    for number in sorted(QUERIES):
        fresh = measure_query_faults(tiny_tpcd_db, QUERIES[number])
        warm = measure_query_faults(reopened, QUERIES[number])
        assert warm == fresh, \
            "Q%d fault trace changed after reopen (%d != %d)" \
            % (number, warm, fresh)


def test_load_tpcd_db_dir_caches_and_warm_starts(tiny_tpcd, tmp_path):
    db_dir = tmp_path / "cache"
    cold_db, cold_report = load_tpcd(tiny_tpcd, db_dir=db_dir)
    assert not cold_report.warm
    meta = peek_tpcd_meta(db_dir)
    assert meta is not None
    assert meta["scale"] == tiny_tpcd.scale
    assert meta["seed"] == tiny_tpcd.seed
    assert meta["counts"]["item"] == tiny_tpcd.counts["item"]

    warm_db, warm_report = load_tpcd(tiny_tpcd, db_dir=db_dir)
    assert warm_report.warm
    assert warm_report.total_s < cold_report.total_s
    assert QUERIES[13].run(warm_db) == QUERIES[13].run(cold_db)
    # the logical store is re-attached, so the Figure 6 commute check
    # (physical vs reference evaluator) still works on a warm start
    assert warm_db.flat.data is tiny_tpcd.data
    warm_db.check_commutes(QUERIES[13].texts()[0])


def test_mismatched_cache_is_ignored(tiny_tpcd, tmp_path):
    db_dir = tmp_path / "cache"
    load_tpcd(tiny_tpcd, db_dir=db_dir)
    from repro.tpcd import generate
    other = generate(scale=tiny_tpcd.scale, seed=tiny_tpcd.seed + 1)
    _db, report = load_tpcd(other, db_dir=db_dir)
    assert not report.warm                 # seed mismatch -> cold load
    assert peek_tpcd_meta(db_dir)["seed"] == other.seed


def test_catalog_sizes_survive_reopen(tiny_tpcd_db, saved_db_dir):
    reopened, report = open_tpcd(saved_db_dir)
    assert reopened.kernel.total_bytes() == \
        tiny_tpcd_db.kernel.total_bytes()
    assert report.base_bytes > 0
    assert report.vector_bytes > 0
    assert sorted(reopened.kernel.registries) == \
        sorted(tiny_tpcd_db.kernel.registries)
    schema = tpcd_schema()
    assert set(reopened.kernel.registries) == set(schema.classes)


def test_open_missing_dir_raises(tmp_path):
    from repro.errors import CatalogError
    with pytest.raises(CatalogError):
        open_tpcd(tmp_path / "not-there")
    assert peek_tpcd_meta(tmp_path / "not-there") is None
