"""All 15 TPC-D queries: MOA engine == reference == row-store.

Three independent implementations must agree on every query: the
flattened MOA/Monet execution, the hand-written reference oracle, and
the n-ary row-store baseline engine.
"""

import pytest

from repro.moa.values import sequences_equivalent
from repro.tpcd import QUERIES, RowStore, load_tpcd, reference
from repro.tpcd.schema import tpcd_schema


def _agree(a, b):
    if a is None or b is None:
        return a is b
    if isinstance(a, (int, float)):
        return abs(float(a) - float(b)) \
            <= 1e-6 * max(1.0, abs(float(b)))
    return sequences_equivalent(a, b)


@pytest.mark.parametrize("number", sorted(QUERIES))
def test_moa_matches_reference(number, tiny_tpcd, tiny_tpcd_db):
    query = QUERIES[number]
    expected = reference(number, tiny_tpcd, query.params())
    actual = query.run(tiny_tpcd_db)
    assert _agree(actual, expected), \
        "Q%d mismatch:\nMOA: %r\nREF: %r" % (number, actual, expected)


@pytest.mark.parametrize("number", sorted(QUERIES))
def test_rowstore_matches_reference(number, tiny_tpcd):
    query = QUERIES[number]
    store = RowStore(tiny_tpcd)
    expected = reference(number, tiny_tpcd, query.params())
    actual = store.run(number, query.params())
    assert _agree(actual, expected), \
        "Q%d mismatch:\nROW: %r\nREF: %r" % (number, actual, expected)


@pytest.mark.parametrize("number", sorted(QUERIES))
def test_query_texts_parse(number):
    from repro.moa.parser import parse
    from repro.moa.typecheck import resolve
    schema = tpcd_schema()
    for text in QUERIES[number].texts():
        resolve(parse(text), schema)


def test_parameter_overrides(tiny_tpcd, tiny_tpcd_db):
    query = QUERIES[6]
    wide = query.run(tiny_tpcd_db, {"disc_lo": "0.0", "disc_hi": "0.1",
                                    "qty": 51})
    narrow = query.run(tiny_tpcd_db)
    assert float(wide) >= float(narrow)


def test_schema_matches_figure1():
    schema = tpcd_schema()
    assert set(schema.class_names()) == {
        "Region", "Nation", "Part", "Supplier", "Customer", "Order",
        "Item"}
    item = schema.cls("Item")
    assert item.attribute_names() == [
        "part", "supplier", "order", "quantity", "returnflag",
        "linestatus", "extendedprice", "discount", "tax", "shipdate",
        "commitdate", "receiptdate", "shipmode", "shipinstruct"]
    supplier = schema.cls("Supplier")
    from repro.moa.types import SetType, TupleType
    supplies = supplier.attribute("supplies")
    assert isinstance(supplies, SetType)
    assert isinstance(supplies.element, TupleType)


def test_loader_builds_accelerators(tiny_tpcd):
    db, report = load_tpcd(tiny_tpcd)
    assert report.load_s > 0
    assert report.vector_bytes > 0
    assert "Item" in db.kernel.registries
    item_price = db.kernel.get("Item_extendedprice")
    assert "datavector" in item_price.accel
    assert item_price.props.tordered         # reordered on tail


def test_item_selectivities_reasonable(tiny_tpcd):
    # Figure 9's selectivity column: Q1 is ~98%, Q6 low, Q13 very low
    s1 = QUERIES[1].item_selectivity(tiny_tpcd)
    assert s1 > 0.9
    s6 = QUERIES[6].item_selectivity(tiny_tpcd)
    assert s6 < 0.1
    s13 = QUERIES[13].item_selectivity(tiny_tpcd)
    assert s13 < 0.05


def test_rowstore_faults_accounted(tiny_tpcd):
    from repro.monet.buffer import BufferManager, use
    store = RowStore(tiny_tpcd)
    manager = BufferManager()
    with use(manager):
        store.run(6, QUERIES[6].params())
    assert manager.faults > 0


def test_moa_faults_accounted(tiny_tpcd_db):
    from repro.monet.buffer import BufferManager, use
    manager = BufferManager()
    with use(manager):
        QUERIES[6].run(tiny_tpcd_db)
    assert manager.faults > 0
