"""Row-store access paths, fault asymmetry, and Q1-style spilling."""

import numpy as np
import pytest

from repro.errors import CatalogError
from repro.monet.buffer import BufferManager, use
from repro.monet.multiproc import result_checksum
from repro.tpcd import QUERIES, RowStore, load_tpcd, open_rowstore


@pytest.fixture(scope="module")
def store(tiny_tpcd):
    return RowStore(tiny_tpcd)


def test_row_width_is_nary(store):
    item = store.tables["item"]
    # 14 attributes + key => (n+1)*w bytes per row, per section 5.2.2
    assert item.row_width == (14 + 1) * 4


def test_select_rows_semantics(store, tiny_tpcd):
    item = tiny_tpcd.tables["item"]
    rows = store.select_rows("item", "returnflag", eq="R")
    assert np.array_equal(rows, np.nonzero(item["returnflag"] == "R")[0])
    rows = store.select_rows("item", "quantity", lo=10, hi=20)
    expected = np.nonzero((item["quantity"] >= 10)
                          & (item["quantity"] < 20))[0]
    assert np.array_equal(rows, expected)


def test_index_vs_scan_choice(store):
    manager = BufferManager()
    with use(manager):
        store.select_rows("item", "quantity", lo=1, hi=2)   # selective
    selective_faults = manager.faults
    manager = BufferManager()
    with use(manager):
        store.select_rows("item", "quantity", lo=1, hi=51)  # everything
    scan_faults = manager.faults
    assert selective_faults < scan_faults


def test_fetch_charges_whole_rows(store):
    # fetching ONE column still faults whole rows in — the row-store
    # penalty that motivates decomposition
    manager = BufferManager()
    rows = np.arange(0, store.tables["item"].n_rows, 7)
    with use(manager):
        store.fetch("item", rows, ["discount"])
    one_col = manager.faults
    manager = BufferManager()
    with use(manager):
        store.fetch("item", rows, ["discount", "quantity", "tax",
                                   "extendedprice"])
    four_cols = manager.faults
    assert one_col == four_cols       # same rows, same pages


def test_narrow_bat_beats_wide_rows(tiny_tpcd, tiny_tpcd_db, store):
    """The paper's core claim at the access-path level: reading one
    attribute of many rows costs less on decomposed storage."""
    from repro.monet import operators as ops
    manager_rel = BufferManager()
    with use(manager_rel):
        store.scan("item", ["discount"])
    manager_monet = BufferManager()
    with use(manager_monet):
        bat = tiny_tpcd_db.kernel.get("Item_discount")
        ops.select_range(bat, None, None)
    assert manager_monet.faults < manager_rel.faults


def test_q1_hot_set_spill(tiny_tpcd_db):
    """Section 6.2: query 1's hot set outgrows memory; with a small
    buffer budget the intermediate results spill and re-fault."""
    query = QUERIES[1]
    unbounded = BufferManager(page_size=4096)
    with use(unbounded):
        query.run(tiny_tpcd_db)
    tight = BufferManager(page_size=4096, memory_pages=40)
    with use(tight):
        query.run(tiny_tpcd_db)
    assert tight.evictions > 0
    assert tight.faults > unbounded.faults


def test_all_queries_produce_fault_attribution(store, tiny_tpcd_db):
    for number in (3, 6, 13):
        manager = BufferManager()
        with use(manager):
            store.run(number, QUERIES[number].params())
        assert any(k.startswith("rel.") for k in manager.op_faults)
        manager = BufferManager()
        with use(manager):
            QUERIES[number].run(tiny_tpcd_db)
        assert manager.op_faults


def test_rowstore_persists_and_warm_starts(tmp_path, tiny_tpcd, store):
    """ROADMAP "Row-store baseline parity": the comparator persists
    through the same HeapStorage backend as the BAT catalog, and a
    warm start answers the Figure 9 queries identically to the
    dbgen-built engine."""
    db_dir = tmp_path / "db"
    load_tpcd(tiny_tpcd, db_dir=db_dir)     # saves catalog + rowstore
    warm = open_rowstore(db_dir)
    assert sorted(warm.tables) == sorted(store.tables)
    for name, table in warm.tables.items():
        cold_table = store.tables[name]
        assert table.n_rows == cold_table.n_rows
        assert table.row_width == cold_table.row_width
        for column, values in table.columns.items():
            cold_values = cold_table.columns[column]
            assert values.dtype == cold_values.dtype   # object restored
            assert np.array_equal(values, cold_values)
    for number in (1, 6, 13):
        params = QUERIES[number].params()
        assert result_checksum(warm.run(number, params)) \
            == result_checksum(store.run(number, params))
    # the baseline honours the shared-catalog generation pin too
    assert warm.generation == 1
    assert open_rowstore(db_dir, expected_generation=1).generation == 1
    from repro.errors import StaleCatalogError
    with pytest.raises(StaleCatalogError):
        open_rowstore(db_dir, expected_generation=9)


def test_dataset_less_resave_keeps_the_baseline(tmp_path, tiny_tpcd):
    """A metadata-only re-save (no dataset at hand) must carry the
    persisted rowstore section forward instead of letting the pruner
    delete the baseline's column files."""
    from repro.tpcd import open_tpcd, save_tpcd
    db_dir = tmp_path / "db"
    load_tpcd(tiny_tpcd, db_dir=db_dir)
    db, _report = open_tpcd(db_dir)
    save_tpcd(db, db_dir)                       # dataset=None
    warm = open_rowstore(db_dir)
    assert warm.tables["item"].n_rows > 0


def test_open_rowstore_needs_the_persisted_section(tmp_path):
    from repro.monet import MonetKernel
    kernel = MonetKernel()
    kernel.dense_bat("nums", "long", [1, 2, 3])
    kernel.save(tmp_path / "db")            # no dataset, no baseline
    with pytest.raises(CatalogError):
        open_rowstore(tmp_path / "db")


def test_qppd_metric():
    from repro.bench import geometric_mean
    assert geometric_mean([1.0, 100.0]) == pytest.approx(10.0)
    assert geometric_mean([]) == 0.0
    assert geometric_mean([5.0]) == pytest.approx(5.0)


def test_format_table_and_chart():
    from repro.bench import ascii_chart, format_table
    table = format_table(["a", "b"], [[1, 2.5], ["x", 0.001]],
                         title="t")
    assert "t\n" in table and "x" in table
    chart = ascii_chart([0, 1], {"s": [0, 10]}, width=10, height=4)
    assert "s = " not in chart or "= s" in chart or "s" in chart
